//! A global, thread-safe metrics registry.
//!
//! Counters and gauges are single atomics; histograms are log-linear
//! HDR-style atomic bucket arrays with quantile queries. Hot paths (the
//! GF(2^8) kernels) go through the [`counter!`](crate::counter) macro,
//! which caches the `Arc<Counter>` in a per-call-site static so
//! steady-state cost is one relaxed `fetch_add` — the registry's
//! `Mutex` is only taken on first use and when snapshotting.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use crate::json::Json;

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Adds `n` to the counter.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Increments the counter by one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A gauge: a signed value that can move both ways.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// Sets the gauge.
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Adds `delta` (may be negative).
    pub fn add(&self, delta: i64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Sub-bucket resolution: each power-of-two octave above [`SUB`] splits
/// into `SUB` linear sub-buckets, bounding relative quantile error at
/// `1 / (2 * SUB)` ≈ 0.39 % — comfortably inside the 1 % target.
const SUB_BITS: u32 = 7;
/// Number of linear sub-buckets per octave (and the exact range: every
/// value below `SUB` gets its own bucket).
const SUB: usize = 1 << SUB_BITS;
/// Octaves covered above the exact range. Shift 0..OCTAVES ⇒ the
/// largest bucketed value is `(2 * SUB << (OCTAVES - 1)) - 1` ≈ 2⁴⁰
/// (~13 days in µs, ~1 TiB in bytes); larger samples land in the
/// overflow bucket but still update `count`, `sum`, and `max` exactly.
const OCTAVES: usize = 33;
/// Total bucket count (exact range + octaves).
const BUCKET_COUNT: usize = SUB + OCTAVES * SUB;

/// Bucket index for a sample, or `None` when it overflows the range.
#[inline]
fn bucket_index(v: u64) -> Option<usize> {
    if v < SUB as u64 {
        return Some(v as usize);
    }
    let high = 63 - v.leading_zeros(); // >= SUB_BITS here
    let shift = high - SUB_BITS;
    if shift as usize >= OCTAVES {
        return None;
    }
    Some(SUB + shift as usize * SUB + ((v >> shift) as usize - SUB))
}

/// Representative value (bucket midpoint) for a bucket index; the exact
/// value for buckets below [`SUB`].
fn bucket_value(i: usize) -> u64 {
    if i < SUB {
        return i as u64;
    }
    let shift = ((i - SUB) / SUB) as u32;
    let offset = ((i - SUB) % SUB) as u64;
    let lo = (SUB as u64 + offset) << shift;
    lo + ((1u64 << shift) >> 1)
}

/// Inclusive `[lo, hi]` value range covered by a bucket index.
fn bucket_range(i: usize) -> (u64, u64) {
    if i < SUB {
        return (i as u64, i as u64);
    }
    let shift = ((i - SUB) / SUB) as u32;
    let offset = ((i - SUB) % SUB) as u64;
    let lo = (SUB as u64 + offset) << shift;
    (lo, lo + (1u64 << shift) - 1)
}

/// A log-linear HDR-style histogram of `u64` samples.
///
/// Values below the sub-bucket resolution (128) are recorded exactly;
/// above that, each power-of-two octave splits into 128 linear
/// sub-buckets, so
/// [`quantile`](Histogram::quantile) answers carry at most
/// `1/(2·SUB)` ≈ 0.4 % relative error. `count`, `sum`, and `max` are
/// exact regardless of bucketing; samples beyond ~2⁴⁰ go to an
/// overflow bucket.
#[derive(Debug)]
pub struct Histogram {
    buckets: Vec<AtomicU64>,
    overflow: AtomicU64,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            buckets: (0..BUCKET_COUNT).map(|_| AtomicU64::new(0)).collect(),
            overflow: AtomicU64::new(0),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one sample.
    pub fn record(&self, v: u64) {
        match bucket_index(v) {
            Some(i) => self.buckets[i].fetch_add(1, Ordering::Relaxed),
            None => self.overflow.fetch_add(1, Ordering::Relaxed),
        };
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Largest sample seen (0 if empty).
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Number of samples that exceeded the bucketed range (~2⁴⁰); they
    /// still count toward `count`/`sum`/`max` but blur quantiles above
    /// their rank.
    pub fn overflow(&self) -> u64 {
        self.overflow.load(Ordering::Relaxed)
    }

    /// Mean sample, or 0.0 if empty.
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() as f64 / n as f64
        }
    }

    /// The `q`-quantile (`q` in `[0, 1]`) of recorded samples, within
    /// ~0.4 % relative error. Live-recording races can skew the answer
    /// by the in-flight samples; take a [`snapshot`](Histogram::snapshot)
    /// for consistent reads.
    pub fn quantile(&self, q: f64) -> u64 {
        self.snapshot().quantile(q)
    }

    /// A point-in-time copy of the bucket array, mergeable with other
    /// snapshots and queryable for quantiles.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            overflow: self.overflow.load(Ordering::Relaxed),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }

    fn to_json(&self) -> Json {
        self.snapshot().to_json()
    }
}

/// A frozen copy of a [`Histogram`]'s state. Snapshots from different
/// histograms (or different machines, via JSON) merge losslessly
/// because every histogram shares the same fixed bucket layout.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    buckets: Vec<u64>,
    overflow: u64,
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> HistogramSnapshot {
        HistogramSnapshot::empty()
    }
}

impl HistogramSnapshot {
    /// A snapshot with no samples.
    pub fn empty() -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: vec![0; BUCKET_COUNT],
            overflow: 0,
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest sample (0 if empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Samples beyond the bucketed range.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Mean sample, or 0.0 if empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Folds `other` into `self`. Merging is commutative and
    /// associative, so shard-local histograms can be combined in any
    /// order.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.overflow += other.overflow;
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    /// The `q`-quantile (`q` in `[0, 1]`), within ~0.4 % relative
    /// error; 0 when empty. `q >= 1` returns the exact max.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        if q >= 1.0 {
            return self.max;
        }
        let target = ((q.max(0.0) * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            cum += c;
            if cum >= target {
                // The max is exact and always tighter than the top
                // bucket's midpoint.
                return bucket_value(i).min(self.max);
            }
        }
        // Rank falls among overflow samples: the best bound we have is
        // the exact max.
        self.max
    }

    /// JSON form: exact aggregates, headline quantiles, and the
    /// non-empty buckets as `{lo, hi, count}` ranges.
    pub fn to_json(&self) -> Json {
        let buckets: Vec<Json> = self
            .buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| {
                let (lo, hi) = bucket_range(i);
                Json::object()
                    .field("lo", lo)
                    .field("hi", hi)
                    .field("count", c)
            })
            .collect();
        Json::object()
            .field("count", self.count)
            .field("sum", self.sum)
            .field("max", self.max)
            .field("mean", self.mean())
            .field("overflow", self.overflow)
            .field("p50", self.quantile(0.50))
            .field("p90", self.quantile(0.90))
            .field("p99", self.quantile(0.99))
            .field("p999", self.quantile(0.999))
            .field("buckets", Json::Arr(buckets))
    }

    /// Rebuilds a snapshot from its [`to_json`](HistogramSnapshot::to_json)
    /// form. Every histogram in the workspace shares the same fixed
    /// bucket layout, so a snapshot serialized on one node
    /// reconstructs exactly on another — that is what makes cross-node
    /// histogram merges lossless. Derived fields (`mean`, `p50`…) are
    /// ignored; bucket `lo` values must be exact bucket boundaries.
    ///
    /// # Errors
    ///
    /// A rendered message naming the missing or malformed field.
    pub fn from_json(v: &Json) -> Result<HistogramSnapshot, String> {
        let field = |name: &str| -> Result<u64, String> {
            v.get(name)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("histogram snapshot: missing or non-integer '{name}'"))
        };
        let mut snap = HistogramSnapshot::empty();
        snap.count = field("count")?;
        snap.sum = field("sum")?;
        snap.max = field("max")?;
        snap.overflow = field("overflow")?;
        let buckets = v
            .get("buckets")
            .and_then(Json::as_array)
            .ok_or("histogram snapshot: missing 'buckets' array")?;
        for b in buckets {
            let lo = b
                .get("lo")
                .and_then(Json::as_u64)
                .ok_or("histogram snapshot: bucket without integer 'lo'")?;
            let count = b
                .get("count")
                .and_then(Json::as_u64)
                .ok_or("histogram snapshot: bucket without integer 'count'")?;
            let i = bucket_index(lo)
                .ok_or_else(|| format!("histogram snapshot: bucket lo {lo} out of range"))?;
            if bucket_range(i).0 != lo {
                return Err(format!(
                    "histogram snapshot: bucket lo {lo} is not a bucket boundary"
                ));
            }
            snap.buckets[i] += count;
        }
        let bucketed: u64 = snap.buckets.iter().sum();
        if bucketed + snap.overflow != snap.count {
            return Err(format!(
                "histogram snapshot: bucket total {} + overflow {} != count {}",
                bucketed, snap.overflow, snap.count
            ));
        }
        Ok(snap)
    }
}

/// A registry of named counters, gauges, and histograms.
#[derive(Debug, Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

impl Registry {
    /// An empty registry. Most code uses [`global()`] instead; a private
    /// registry is useful in tests that need isolation.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// The counter named `name`, created on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.counters.lock().unwrap();
        map.entry(name.to_string()).or_default().clone()
    }

    /// The gauge named `name`, created on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = self.gauges.lock().unwrap();
        map.entry(name.to_string()).or_default().clone()
    }

    /// The histogram named `name`, created on first use. All histograms
    /// share the fixed log-linear bucket layout, so their snapshots are
    /// mutually mergeable.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut map = self.histograms.lock().unwrap();
        map.entry(name.to_string()).or_default().clone()
    }

    /// Starts a scoped timer that records elapsed microseconds into the
    /// histogram `name` (and a span into the global trace ring) when
    /// dropped.
    pub fn timer(&self, name: &str) -> ScopedTimer {
        ScopedTimer {
            hist: self.histogram(name),
            name: name.to_string(),
            start: Instant::now(),
        }
    }

    /// A point-in-time JSON snapshot of every metric, sorted by name,
    /// plus the global trace ring's health (buffered/dropped counts) so
    /// a truncated trace is never silently read as complete. Prints a
    /// one-line stderr warning (once per process) when trace events
    /// have been dropped.
    pub fn snapshot(&self) -> Json {
        let counters: Vec<(String, Json)> = self
            .counters
            .lock()
            .unwrap()
            .iter()
            .map(|(k, v)| (k.clone(), Json::Uint(v.get())))
            .collect();
        let gauges: Vec<(String, Json)> = self
            .gauges
            .lock()
            .unwrap()
            .iter()
            .map(|(k, v)| (k.clone(), Json::Int(v.get())))
            .collect();
        let mut histogram_overflow = 0u64;
        let histograms: Vec<(String, Json)> = self
            .histograms
            .lock()
            .unwrap()
            .iter()
            .map(|(k, v)| {
                histogram_overflow += v.overflow();
                (k.clone(), v.to_json())
            })
            .collect();
        let ring = crate::trace::global_trace();
        let dropped = ring.dropped();
        if dropped > 0 {
            warn_dropped_once(dropped);
        }
        Json::object()
            .field("counters", Json::Obj(counters))
            .field("gauges", Json::Obj(gauges))
            .field("histograms", Json::Obj(histograms))
            .field("histogram_overflow", histogram_overflow)
            .field(
                "trace",
                Json::object()
                    .field("enabled", ring.is_enabled())
                    .field("buffered", ring.len() as u64)
                    .field("capacity", ring.capacity() as u64)
                    .field("dropped", dropped),
            )
    }

    /// A point-in-time [`RegistrySnapshot`](crate::RegistrySnapshot)
    /// of every metric — the wire-friendly form the scrape protocol
    /// ships between nodes and merges into cluster views.
    pub fn export(&self) -> crate::snapshot::RegistrySnapshot {
        crate::snapshot::RegistrySnapshot {
            counters: self
                .counters
                .lock()
                .unwrap()
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: self
                .gauges
                .lock()
                .unwrap()
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            histograms: self
                .histograms
                .lock()
                .unwrap()
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
        }
    }

    /// Removes every metric. Registered `Arc`s held by callers (including
    /// the `counter!` macro's per-call-site caches) keep counting, but
    /// they no longer appear in snapshots; subsequent lookups by the same
    /// name create fresh metrics. Intended for test isolation.
    pub fn clear(&self) {
        self.counters.lock().unwrap().clear();
        self.gauges.lock().unwrap().clear();
        self.histograms.lock().unwrap().clear();
    }
}

/// One stderr line, once per process, so a truncated trace export is
/// never mistaken for a complete one.
fn warn_dropped_once(dropped: u64) {
    static WARNED: OnceLock<()> = OnceLock::new();
    WARNED.get_or_init(|| {
        eprintln!(
            "galloper-obs: trace ring dropped {dropped} event(s); \
             raise GALLOPER_TRACE_CAP for a complete trace"
        );
    });
}

/// The process-wide registry.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

/// Guard returned by [`Registry::timer`]; records on drop.
#[derive(Debug)]
pub struct ScopedTimer {
    hist: Arc<Histogram>,
    name: String,
    start: Instant,
}

impl ScopedTimer {
    /// Elapsed time so far, in microseconds.
    pub fn elapsed_us(&self) -> u64 {
        self.start.elapsed().as_micros() as u64
    }
}

impl Drop for ScopedTimer {
    fn drop(&mut self) {
        let us = self.elapsed_us();
        self.hist.record(us);
        crate::trace::global_trace().record_span(&self.name, "timer", self.start, us);
    }
}

/// Adds `$n` to the global counter `$name`, caching the `Arc<Counter>`
/// in a per-call-site static so the steady-state cost is one relaxed
/// `fetch_add`.
///
/// ```
/// galloper_obs::counter!("gf.bytes_xored", 4096);
/// ```
#[macro_export]
macro_rules! counter {
    ($name:expr, $n:expr) => {{
        static CACHED: ::std::sync::OnceLock<::std::sync::Arc<$crate::Counter>> =
            ::std::sync::OnceLock::new();
        CACHED
            .get_or_init(|| $crate::global().counter($name))
            .add($n as u64);
    }};
}

/// Starts a scoped timer on the global registry; the value binds to a
/// local so it drops (and records) at end of scope.
///
/// ```
/// let _t = galloper_obs::timer!("erasure.encode_us");
/// ```
#[macro_export]
macro_rules! timer {
    ($name:expr) => {
        $crate::global().timer($name)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_roundtrip() {
        let r = Registry::new();
        r.counter("c").add(3);
        r.counter("c").inc();
        assert_eq!(r.counter("c").get(), 4);
        r.gauge("g").set(10);
        r.gauge("g").add(-4);
        assert_eq!(r.gauge("g").get(), 6);
    }

    #[test]
    fn small_values_are_exact() {
        let h = Histogram::new();
        for v in 0..SUB as u64 {
            h.record(v);
        }
        assert_eq!(h.count(), SUB as u64);
        for v in [0u64, 1, 63, 127] {
            let snap = h.snapshot();
            assert_eq!(snap.buckets[v as usize], 1, "bucket for {v}");
        }
        // Quantiles on exact buckets are exact.
        assert_eq!(h.quantile(0.5), 63);
    }

    #[test]
    fn bucket_index_and_range_agree() {
        for v in [
            0u64,
            1,
            127,
            128,
            129,
            255,
            256,
            1000,
            65_535,
            1 << 20,
            (1 << 40) - 1,
        ] {
            let i = bucket_index(v).expect("in range");
            let (lo, hi) = bucket_range(i);
            assert!(lo <= v && v <= hi, "v={v} not in [{lo},{hi}]");
            let mid = bucket_value(i);
            assert!(lo <= mid && mid <= hi);
        }
        assert!(bucket_index(1 << 40).is_none());
        assert!(bucket_index(u64::MAX).is_none());
    }

    #[test]
    fn quantile_relative_error_is_small() {
        let h = Histogram::new();
        for v in 1..=100_000u64 {
            h.record(v);
        }
        for (q, exact) in [(0.5, 50_000.0), (0.9, 90_000.0), (0.99, 99_000.0)] {
            let got = h.quantile(q) as f64;
            let rel = (got - exact).abs() / exact;
            assert!(rel <= 0.01, "q={q}: got {got}, exact {exact}, rel {rel}");
        }
        assert_eq!(h.quantile(1.0), 100_000);
    }

    #[test]
    fn overflow_counts_and_quantile_fallback() {
        let h = Histogram::new();
        h.record(5);
        h.record(u64::MAX / 2);
        assert_eq!(h.count(), 2);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.max(), u64::MAX / 2);
        // The overflowing sample's rank resolves to the exact max.
        assert_eq!(h.quantile(0.99), u64::MAX / 2);
        let snap = h.snapshot().to_json();
        assert_eq!(snap.get("overflow").unwrap().as_f64(), Some(1.0));
    }

    #[test]
    fn snapshots_merge_losslessly() {
        let a = Histogram::new();
        let b = Histogram::new();
        let whole = Histogram::new();
        for v in 0..1000u64 {
            if v % 2 == 0 { &a } else { &b }.record(v * 37);
            whole.record(v * 37);
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged, whole.snapshot());
    }

    #[test]
    fn snapshot_is_sorted_and_complete() {
        let r = Registry::new();
        r.counter("b").inc();
        r.counter("a").inc();
        let snap = r.snapshot();
        let Json::Obj(counters) = snap.get("counters").unwrap() else {
            panic!("counters not an object")
        };
        let names: Vec<&str> = counters.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(names, ["a", "b"]);
        assert!(snap.get("trace").unwrap().get("dropped").is_some());
    }

    #[test]
    fn snapshot_json_reports_quantiles() {
        let r = Registry::new();
        let h = r.histogram("h");
        for v in 1..=10_000u64 {
            h.record(v);
        }
        let snap = r.snapshot();
        let hj = snap.get("histograms").unwrap().get("h").unwrap();
        let p99 = hj.get("p99").unwrap().as_f64().unwrap();
        assert!((p99 - 9_900.0).abs() / 9_900.0 <= 0.01, "p99 {p99}");
        // The whole snapshot survives a render→parse round trip (parse
        // reads non-negative integers as `Int`, so compare re-renders).
        let parsed = crate::json::parse(&snap.render()).unwrap();
        assert_eq!(parsed.render(), snap.render());
    }

    #[test]
    fn timer_records_into_histogram() {
        let r = Registry::new();
        {
            let _t = r.timer("op_us");
        }
        assert_eq!(r.histogram("op_us").count(), 1);
    }

    #[test]
    fn clear_empties_snapshot() {
        let r = Registry::new();
        r.counter("x").inc();
        r.clear();
        assert_eq!(
            r.snapshot().get("counters").unwrap(),
            &Json::Obj(Vec::new())
        );
    }
}
