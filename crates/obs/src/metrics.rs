//! A global, thread-safe metrics registry.
//!
//! Counters and gauges are single atomics; histograms are fixed-bucket
//! atomic arrays. Hot paths (the GF(2^8) kernels) go through the
//! [`counter!`](crate::counter) macro, which caches the `Arc<Counter>`
//! in a per-call-site static so steady-state cost is one relaxed
//! `fetch_add` — the registry's `Mutex` is only taken on first use and
//! when snapshotting.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use crate::json::Json;

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Adds `n` to the counter.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Increments the counter by one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A gauge: a signed value that can move both ways.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// Sets the gauge.
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Adds `delta` (may be negative).
    pub fn add(&self, delta: i64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Default histogram bucket bounds: powers of four from 1 to 4^15,
/// which spans 1 µs .. ~18 min when recording microseconds and
/// 1 B .. ~1 GiB when recording bytes.
pub const DEFAULT_BUCKETS: [u64; 16] = [
    1,
    4,
    16,
    64,
    256,
    1_024,
    4_096,
    16_384,
    65_536,
    262_144,
    1_048_576,
    4_194_304,
    16_777_216,
    67_108_864,
    268_435_456,
    1_073_741_824,
];

/// A fixed-bucket histogram of `u64` samples.
///
/// `buckets[i]` counts samples `<= bounds[i]`; one extra overflow bucket
/// counts the rest. `sum` and `count` are exact regardless of bucketing.
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<u64>,
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Histogram {
    fn new(bounds: &[u64]) -> Histogram {
        assert!(
            !bounds.is_empty(),
            "histogram needs at least one bucket bound"
        );
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        Histogram {
            bounds: bounds.to_vec(),
            buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one sample.
    pub fn record(&self, v: u64) {
        let idx = self.bounds.partition_point(|&b| b < v);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Largest sample seen (0 if empty).
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Mean sample, or 0.0 if empty.
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() as f64 / n as f64
        }
    }

    fn snapshot(&self) -> Json {
        let buckets: Vec<Json> = self
            .bounds
            .iter()
            .map(|b| Json::Uint(*b))
            .zip(self.buckets.iter())
            .map(|(bound, count)| {
                Json::object()
                    .field("le", bound)
                    .field("count", count.load(Ordering::Relaxed))
            })
            .collect();
        Json::object()
            .field("count", self.count())
            .field("sum", self.sum())
            .field("max", self.max())
            .field("mean", self.mean())
            .field(
                "overflow",
                self.buckets[self.bounds.len()].load(Ordering::Relaxed),
            )
            .field("buckets", Json::Arr(buckets))
    }
}

/// A registry of named counters, gauges, and histograms.
#[derive(Debug, Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

impl Registry {
    /// An empty registry. Most code uses [`global()`] instead; a private
    /// registry is useful in tests that need isolation.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// The counter named `name`, created on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.counters.lock().unwrap();
        map.entry(name.to_string()).or_default().clone()
    }

    /// The gauge named `name`, created on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = self.gauges.lock().unwrap();
        map.entry(name.to_string()).or_default().clone()
    }

    /// The histogram named `name` with [`DEFAULT_BUCKETS`], created on
    /// first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        self.histogram_with(name, &DEFAULT_BUCKETS)
    }

    /// The histogram named `name`; `bounds` applies only on creation
    /// (an existing histogram keeps its original buckets).
    pub fn histogram_with(&self, name: &str, bounds: &[u64]) -> Arc<Histogram> {
        let mut map = self.histograms.lock().unwrap();
        map.entry(name.to_string())
            .or_insert_with(|| Arc::new(Histogram::new(bounds)))
            .clone()
    }

    /// Starts a scoped timer that records elapsed microseconds into the
    /// histogram `name` (and a span into the global trace ring) when
    /// dropped.
    pub fn timer(&self, name: &str) -> ScopedTimer {
        ScopedTimer {
            hist: self.histogram(name),
            name: name.to_string(),
            start: Instant::now(),
        }
    }

    /// A point-in-time JSON snapshot of every metric, sorted by name.
    pub fn snapshot(&self) -> Json {
        let counters: Vec<(String, Json)> = self
            .counters
            .lock()
            .unwrap()
            .iter()
            .map(|(k, v)| (k.clone(), Json::Uint(v.get())))
            .collect();
        let gauges: Vec<(String, Json)> = self
            .gauges
            .lock()
            .unwrap()
            .iter()
            .map(|(k, v)| (k.clone(), Json::Int(v.get())))
            .collect();
        let histograms: Vec<(String, Json)> = self
            .histograms
            .lock()
            .unwrap()
            .iter()
            .map(|(k, v)| (k.clone(), v.snapshot()))
            .collect();
        Json::object()
            .field("counters", Json::Obj(counters))
            .field("gauges", Json::Obj(gauges))
            .field("histograms", Json::Obj(histograms))
    }

    /// Removes every metric. Registered `Arc`s held by callers (including
    /// the `counter!` macro's per-call-site caches) keep counting, but
    /// they no longer appear in snapshots; subsequent lookups by the same
    /// name create fresh metrics. Intended for test isolation.
    pub fn clear(&self) {
        self.counters.lock().unwrap().clear();
        self.gauges.lock().unwrap().clear();
        self.histograms.lock().unwrap().clear();
    }
}

/// The process-wide registry.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

/// Guard returned by [`Registry::timer`]; records on drop.
#[derive(Debug)]
pub struct ScopedTimer {
    hist: Arc<Histogram>,
    name: String,
    start: Instant,
}

impl ScopedTimer {
    /// Elapsed time so far, in microseconds.
    pub fn elapsed_us(&self) -> u64 {
        self.start.elapsed().as_micros() as u64
    }
}

impl Drop for ScopedTimer {
    fn drop(&mut self) {
        let us = self.elapsed_us();
        self.hist.record(us);
        crate::trace::global_trace().record_span(&self.name, "timer", self.start, us);
    }
}

/// Adds `$n` to the global counter `$name`, caching the `Arc<Counter>`
/// in a per-call-site static so the steady-state cost is one relaxed
/// `fetch_add`.
///
/// ```
/// galloper_obs::counter!("gf.bytes_xored", 4096);
/// ```
#[macro_export]
macro_rules! counter {
    ($name:expr, $n:expr) => {{
        static CACHED: ::std::sync::OnceLock<::std::sync::Arc<$crate::Counter>> =
            ::std::sync::OnceLock::new();
        CACHED
            .get_or_init(|| $crate::global().counter($name))
            .add($n as u64);
    }};
}

/// Starts a scoped timer on the global registry; the value binds to a
/// local so it drops (and records) at end of scope.
///
/// ```
/// let _t = galloper_obs::timer!("erasure.encode_us");
/// ```
#[macro_export]
macro_rules! timer {
    ($name:expr) => {
        $crate::global().timer($name)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_roundtrip() {
        let r = Registry::new();
        r.counter("c").add(3);
        r.counter("c").inc();
        assert_eq!(r.counter("c").get(), 4);
        r.gauge("g").set(10);
        r.gauge("g").add(-4);
        assert_eq!(r.gauge("g").get(), 6);
    }

    #[test]
    fn histogram_buckets_and_stats() {
        let r = Registry::new();
        let h = r.histogram_with("h", &[10, 100]);
        h.record(5);
        h.record(10); // le 10 (inclusive bound)
        h.record(50);
        h.record(1000); // overflow
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 1065);
        assert_eq!(h.max(), 1000);
        let snap = h.snapshot();
        let buckets = snap.get("buckets").unwrap().as_array().unwrap();
        assert_eq!(buckets[0].get("count").unwrap().as_f64(), Some(2.0));
        assert_eq!(buckets[1].get("count").unwrap().as_f64(), Some(1.0));
        assert_eq!(snap.get("overflow").unwrap().as_f64(), Some(1.0));
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn histogram_rejects_unsorted_bounds() {
        Histogram::new(&[10, 10]);
    }

    #[test]
    fn snapshot_is_sorted_and_complete() {
        let r = Registry::new();
        r.counter("b").inc();
        r.counter("a").inc();
        let snap = r.snapshot();
        let Json::Obj(counters) = snap.get("counters").unwrap() else {
            panic!("counters not an object")
        };
        let names: Vec<&str> = counters.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(names, ["a", "b"]);
    }

    #[test]
    fn timer_records_into_histogram() {
        let r = Registry::new();
        {
            let _t = r.timer("op_us");
        }
        assert_eq!(r.histogram("op_us").count(), 1);
    }

    #[test]
    fn clear_empties_snapshot() {
        let r = Registry::new();
        r.counter("x").inc();
        r.clear();
        assert_eq!(
            r.snapshot().get("counters").unwrap(),
            &Json::Obj(Vec::new())
        );
    }
}
