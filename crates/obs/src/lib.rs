//! `galloper-obs`: the workspace's observability substrate.
//!
//! The build environment is offline, so everything here is std-only —
//! no `serde`, no `tracing`, no `metrics` crates. Three layers:
//!
//! * [`metrics`] — a global registry of atomic [`Counter`]s,
//!   [`Gauge`]s, and log-linear HDR-style [`Histogram`]s with
//!   quantile queries and mergeable snapshots, plus named scoped
//!   timers. Hot paths use the [`counter!`] macro (one relaxed
//!   `fetch_add` in steady state).
//! * [`op`] — request-scoped causal tracing: an [`op::OpContext`]
//!   carried in a thread-local and installed into worker threads, so
//!   every span names the operation that caused it, plus per-op
//!   [`op::OpReport`] JSON lines.
//! * [`trace`] — a bounded ring buffer of spans and instant events,
//!   disabled by default (recording while off is one atomic load).
//! * [`json`] / [`chrome`] — a hand-rolled JSON value tree with a
//!   deterministic writer, and a Chrome `trace_event` builder whose
//!   output loads in Perfetto / `chrome://tracing`.
//!
//! Environment variables (see the README's `GALLOPER_*` table):
//!
//! * `GALLOPER_JSON_OUT` — directory where benchmarks and the CLI drop
//!   machine-readable `BENCH_*.json` / snapshot files.
//! * `GALLOPER_TRACE` — set to `1`/`true` to enable the global trace
//!   ring from process start (see [`init_from_env`]).
//! * `GALLOPER_TRACE_CAP` — capacity of the global trace ring
//!   (default 65 536 events; read once, at first use).
//! * `GALLOPER_OP_LOG` — file path; when set, every top-level DFS
//!   operation appends one [`op::OpReport`] JSON line there.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chrome;
pub mod json;
pub mod metrics;
pub mod op;
pub mod snapshot;
pub mod trace;

pub use chrome::ChromeTrace;
pub use json::Json;
pub use metrics::{global, Counter, Gauge, Histogram, HistogramSnapshot, Registry, ScopedTimer};
pub use op::{OpContext, OpReport, OpSpan};
pub use snapshot::RegistrySnapshot;
pub use trace::{global_trace, SpanGuard, TraceEvent, TraceRing};

use std::io::Write as _;
use std::path::{Path, PathBuf};

/// Applies `GALLOPER_TRACE` (enables the global trace ring when set to
/// `1`/`true`/`on`) and `GALLOPER_OP_LOG` (opens the named file in
/// append mode as the op-report log). Call once near the top of
/// `main`; safe to call repeatedly.
pub fn init_from_env() {
    if let Ok(v) = std::env::var("GALLOPER_TRACE") {
        let on = matches!(v.trim(), "1" | "true" | "on");
        global_trace().set_enabled(on);
    }
    if let Ok(path) = std::env::var("GALLOPER_OP_LOG") {
        let path = path.trim();
        if !path.is_empty() && !op::op_log_enabled() {
            match std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(path)
            {
                Ok(f) => op::set_op_log(Some(Box::new(f))),
                Err(e) => eprintln!("galloper-obs: cannot open GALLOPER_OP_LOG {path}: {e}"),
            }
        }
    }
}

/// The output directory requested via `GALLOPER_JSON_OUT`, if set.
///
/// An empty value means "current directory". Benchmarks treat either a
/// `--json [DIR]` flag or this variable as the switch that turns JSON
/// output on.
pub fn json_out_dir_from_env() -> Option<PathBuf> {
    match std::env::var("GALLOPER_JSON_OUT") {
        Ok(v) if v.trim().is_empty() => Some(PathBuf::from(".")),
        Ok(v) => Some(PathBuf::from(v)),
        Err(_) => None,
    }
}

/// Writes `value` to `path` as compact JSON with a trailing newline,
/// creating parent directories as needed.
pub fn write_json(path: &Path, value: &Json) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let mut file = std::fs::File::create(path)?;
    file.write_all(value.render().as_bytes())?;
    file.write_all(b"\n")?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_json_creates_parents_and_appends_newline() {
        let dir = std::env::temp_dir().join("galloper_obs_test_write_json");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("nested").join("out.json");
        write_json(&path, &Json::object().field("a", 1u64)).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text, "{\"a\":1}\n");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn counter_macro_hits_global_registry() {
        counter!("obs.test.macro_counter", 2);
        counter!("obs.test.macro_counter", 3);
        assert_eq!(global().counter("obs.test.macro_counter").get(), 5);
    }

    #[test]
    fn timer_macro_records() {
        {
            let _t = timer!("obs.test.macro_timer_us");
        }
        assert!(global().histogram("obs.test.macro_timer_us").count() >= 1);
    }
}
