//! Wire-friendly registry snapshots and cross-node merging.
//!
//! A [`RegistrySnapshot`] is the frozen, serializable form of a
//! [`Registry`](crate::Registry): plain maps of counter/gauge values
//! plus [`HistogramSnapshot`]s. Because every histogram in the
//! workspace shares one fixed log-linear bucket layout, snapshots taken
//! on different nodes merge *exactly* — counters and gauges sum,
//! histogram buckets add element-wise — so a gateway can fold per-node
//! scrapes into one cluster view whose quantiles are as trustworthy as
//! any single node's.
//!
//! The JSON form is deliberately the same shape as the `counters` /
//! `gauges` / `histograms` sections of
//! [`Registry::snapshot`](crate::Registry::snapshot), so existing
//! tooling that reads `galloper_metrics.json` can read scraped
//! snapshots unchanged.

use std::collections::BTreeMap;

use crate::json::Json;
use crate::metrics::HistogramSnapshot;

/// A frozen, mergeable copy of a registry's metrics.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RegistrySnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram snapshots by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl RegistrySnapshot {
    /// An empty snapshot.
    pub fn new() -> RegistrySnapshot {
        RegistrySnapshot::default()
    }

    /// A counter's value, 0 when absent.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// A gauge's value, 0 when absent.
    pub fn gauge(&self, name: &str) -> i64 {
        self.gauges.get(name).copied().unwrap_or(0)
    }

    /// A histogram snapshot, when present.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.get(name)
    }

    /// Folds `other` into `self`: counters and gauges sum, histograms
    /// merge bucket-wise. Commutative and associative, so per-node
    /// snapshots can be combined in any order — the merged quantiles
    /// are exactly those of the union of all nodes' samples.
    pub fn merge(&mut self, other: &RegistrySnapshot) {
        for (name, v) in &other.counters {
            *self.counters.entry(name.clone()).or_insert(0) += v;
        }
        for (name, v) in &other.gauges {
            *self.gauges.entry(name.clone()).or_insert(0) += v;
        }
        for (name, h) in &other.histograms {
            self.histograms
                .entry(name.clone())
                .or_insert_with(HistogramSnapshot::empty)
                .merge(h);
        }
    }

    /// JSON form (the `counters`/`gauges`/`histograms` shape of
    /// [`Registry::snapshot`](crate::Registry::snapshot)).
    pub fn to_json(&self) -> Json {
        let counters: Vec<(String, Json)> = self
            .counters
            .iter()
            .map(|(k, v)| (k.clone(), Json::Uint(*v)))
            .collect();
        let gauges: Vec<(String, Json)> = self
            .gauges
            .iter()
            .map(|(k, v)| (k.clone(), Json::Int(*v)))
            .collect();
        let histograms: Vec<(String, Json)> = self
            .histograms
            .iter()
            .map(|(k, v)| (k.clone(), v.to_json()))
            .collect();
        Json::object()
            .field("counters", Json::Obj(counters))
            .field("gauges", Json::Obj(gauges))
            .field("histograms", Json::Obj(histograms))
    }

    /// Rebuilds a snapshot from its [`to_json`](RegistrySnapshot::to_json)
    /// form. Missing sections read as empty (a node running an older
    /// build may not report all three); malformed entries are errors,
    /// never silently dropped — a scrape that merged half a node's
    /// histogram would corrupt the cluster view.
    ///
    /// # Errors
    ///
    /// A rendered message naming the offending metric.
    pub fn from_json(v: &Json) -> Result<RegistrySnapshot, String> {
        let mut snap = RegistrySnapshot::new();
        if let Some(Json::Obj(fields)) = v.get("counters") {
            for (name, value) in fields {
                let value = value
                    .as_u64()
                    .ok_or_else(|| format!("counter '{name}' is not a non-negative integer"))?;
                snap.counters.insert(name.clone(), value);
            }
        }
        if let Some(Json::Obj(fields)) = v.get("gauges") {
            for (name, value) in fields {
                let value = value
                    .as_i64()
                    .ok_or_else(|| format!("gauge '{name}' is not an integer"))?;
                snap.gauges.insert(name.clone(), value);
            }
        }
        if let Some(Json::Obj(fields)) = v.get("histograms") {
            for (name, value) in fields {
                let h = HistogramSnapshot::from_json(value)
                    .map_err(|e| format!("histogram '{name}': {e}"))?;
                snap.histograms.insert(name.clone(), h);
            }
        }
        Ok(snap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Registry;

    fn sample() -> RegistrySnapshot {
        let r = Registry::new();
        r.counter("a.requests").add(7);
        r.counter("b.bytes").add(1 << 33);
        r.gauge("inflight").set(-3);
        let h = r.histogram("lat_us");
        for v in [0u64, 1, 127, 128, 4096, 1 << 20, u64::MAX / 3] {
            h.record(v);
        }
        r.export()
    }

    #[test]
    fn json_roundtrip_is_exact() {
        let snap = sample();
        let parsed = crate::json::parse(&snap.to_json().render()).unwrap();
        let back = RegistrySnapshot::from_json(&parsed).unwrap();
        assert_eq!(back, snap);
        // Quantiles survive the trip exactly, including the overflow
        // sample's fallback to max.
        let h = back.histogram("lat_us").unwrap();
        assert_eq!(h.quantile(0.999), snap.histogram("lat_us").unwrap().max());
    }

    #[test]
    fn merge_equals_union_of_samples() {
        let ra = Registry::new();
        let rb = Registry::new();
        let whole = Registry::new();
        for v in 0..500u64 {
            if v % 2 == 0 { &ra } else { &rb }
                .histogram("h")
                .record(v * 91);
            whole.histogram("h").record(v * 91);
            if v % 2 == 0 { &ra } else { &rb }.counter("c").inc();
            whole.counter("c").inc();
        }
        let mut merged = ra.export();
        merged.merge(&rb.export());
        assert_eq!(merged, whole.export());
    }

    #[test]
    fn merge_is_commutative_over_disjoint_names() {
        let mut a = sample();
        let mut other = RegistrySnapshot::new();
        other.counters.insert("only.there".into(), 5);
        let mut b = other.clone();
        a.merge(&other);
        b.merge(&sample());
        assert_eq!(a, b);
        assert_eq!(a.counter("only.there"), 5);
        assert_eq!(a.counter("a.requests"), 7);
    }

    #[test]
    fn malformed_histograms_are_rejected_not_skipped() {
        let doc = crate::json::parse(
            r#"{"histograms":{"h":{"count":5,"sum":1,"max":1,"overflow":0,"buckets":[]}}}"#,
        )
        .unwrap();
        // count says 5 but the buckets hold 0 samples: inconsistent.
        assert!(RegistrySnapshot::from_json(&doc).is_err());
        let doc =
            crate::json::parse(r#"{"counters":{"c":-2},"gauges":{},"histograms":{}}"#).unwrap();
        assert!(RegistrySnapshot::from_json(&doc).is_err());
    }

    #[test]
    fn missing_sections_read_as_empty() {
        let doc = crate::json::parse("{}").unwrap();
        let snap = RegistrySnapshot::from_json(&doc).unwrap();
        assert_eq!(snap, RegistrySnapshot::new());
        assert_eq!(snap.counter("anything"), 0);
    }
}
