//! A hand-rolled JSON value tree and writer.
//!
//! The build environment is offline, so `serde_json` is not available;
//! this module implements the small subset the workspace needs: building
//! a value tree and rendering it deterministically (object fields keep
//! insertion order, floats use Rust's shortest-roundtrip formatting), so
//! golden tests can compare output byte for byte.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A signed integer (rendered without a decimal point).
    Int(i64),
    /// An unsigned integer (rendered without a decimal point).
    Uint(u64),
    /// A float; non-finite values render as `null` (JSON has no NaN).
    Float(f64),
    /// A string (escaped on output).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; fields render in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An empty object.
    pub fn object() -> Json {
        Json::Obj(Vec::new())
    }

    /// Appends a field to an object and returns `self` for chaining.
    ///
    /// # Panics
    ///
    /// Panics if `self` is not an object.
    pub fn field(mut self, name: &str, value: impl Into<Json>) -> Json {
        match &mut self {
            Json::Obj(fields) => fields.push((name.to_string(), value.into())),
            other => panic!("field() on non-object {other:?}"),
        }
        self
    }

    /// Looks up a field of an object.
    pub fn get(&self, name: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == name).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The elements if `self` is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The numeric value if `self` is any number variant.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Json::Int(v) => Some(v as f64),
            Json::Uint(v) => Some(v as f64),
            Json::Float(v) => Some(v),
            _ => None,
        }
    }

    /// The value as an exact `u64`, when `self` is a non-negative
    /// integer variant (or a float that is a non-negative integer that
    /// fits). Unlike [`as_f64`](Json::as_f64) this never rounds, so
    /// wire snapshots of large counters survive a round trip exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::Int(v) if v >= 0 => Some(v as u64),
            Json::Uint(v) => Some(v),
            Json::Float(v) if v >= 0.0 && v.fract() == 0.0 && v <= u64::MAX as f64 => {
                Some(v as u64)
            }
            _ => None,
        }
    }

    /// The value as an exact `i64`, when `self` is an integer variant
    /// (or an integral float) that fits.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Json::Int(v) => Some(v),
            Json::Uint(v) => i64::try_from(v).ok(),
            Json::Float(v) if v.fract() == 0.0 && v >= i64::MIN as f64 && v <= i64::MAX as f64 => {
                Some(v as i64)
            }
            _ => None,
        }
    }

    /// The string value if `self` is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Renders compact JSON (no whitespace).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(v) => out.push_str(&v.to_string()),
            Json::Uint(v) => out.push_str(&v.to_string()),
            Json::Float(v) => {
                if v.is_finite() {
                    // `{}` is shortest-roundtrip and deterministic; ensure
                    // integral floats still look like numbers JSON parsers
                    // accept (they do: "1" is valid JSON).
                    out.push_str(&v.to_string());
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}
impl From<i64> for Json {
    fn from(v: i64) -> Json {
        Json::Int(v)
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::Uint(v)
    }
}
impl From<u32> for Json {
    fn from(v: u32) -> Json {
        Json::Uint(u64::from(v))
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::Uint(v as u64)
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Float(v)
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}
impl From<Vec<Json>> for Json {
    fn from(v: Vec<Json>) -> Json {
        Json::Arr(v)
    }
}

/// A minimal recursive-descent JSON parser — enough to read back the
/// files this crate writes (tests and tooling; not a general validator).
pub fn parse(input: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing input at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", c as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(_) => self.number(),
            None => Err("unexpected end of input".into()),
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while matches!(
            self.peek(),
            Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if let Ok(v) = text.parse::<i64>() {
            return Ok(Json::Int(v));
        }
        if let Ok(v) = text.parse::<u64>() {
            return Ok(Json::Uint(v));
        }
        text.parse::<f64>()
            .map(Json::Float)
            .map_err(|_| format!("bad number {text:?} at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("bad \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            out.push(char::from_u32(code).ok_or("bad \\u code point")?);
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid UTF-8")?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_compact_deterministic_json() {
        let v = Json::object()
            .field("name", "fig8")
            .field("mb", 90.5)
            .field("n", 7u64)
            .field("neg", -3i64)
            .field("ok", true)
            .field("list", Json::Arr(vec![Json::Uint(1), Json::Null]));
        assert_eq!(
            v.render(),
            r#"{"name":"fig8","mb":90.5,"n":7,"neg":-3,"ok":true,"list":[1,null]}"#
        );
    }

    #[test]
    fn escapes_strings() {
        let v = Json::Str("a\"b\\c\nd\u{1}".into());
        assert_eq!(v.render(), "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn non_finite_floats_render_null() {
        assert_eq!(Json::Float(f64::NAN).render(), "null");
        assert_eq!(Json::Float(f64::INFINITY).render(), "null");
    }

    #[test]
    fn parse_roundtrips_rendered_output() {
        let v = Json::object()
            .field("s", "he\"llo\n")
            .field("f", 1.25)
            .field("i", -7i64)
            .field("u", u64::MAX)
            .field("arr", Json::Arr(vec![Json::Bool(false), Json::Null]))
            .field("nested", Json::object().field("x", 0.1));
        let parsed = parse(&v.render()).unwrap();
        assert_eq!(parsed.render(), v.render());
    }

    #[test]
    fn parse_accepts_whitespace() {
        let v = parse(" { \"a\" : [ 1 , 2.5 ] } ").unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 2);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\":1} extra").is_err());
    }

    #[test]
    fn accessors() {
        let v = Json::object().field("x", 3u64);
        assert_eq!(v.get("x").unwrap().as_f64(), Some(3.0));
        assert!(v.get("y").is_none());
        assert_eq!(Json::Str("s".into()).as_str(), Some("s"));
    }
}
