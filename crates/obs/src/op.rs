//! Request-scoped causal tracing: operation contexts, spans, and
//! per-operation reports.
//!
//! An [`OpContext`] is two `u64`s — an operation id and the current
//! span id — carried in a thread-local and installed into worker
//! threads by the codec pool, so every span recorded anywhere inside a
//! `Dfs::get` (stream drivers, pool tasks, kernel dispatch, deferred
//! repairs) names the operation that caused it. The trace ring stores
//! `(op, span, parent)` on each event and the Chrome exporter turns
//! them into nesting plus flow arrows, so one degraded read renders as
//! one connected tree.
//!
//! Alongside the trace, each top-level operation can emit a structured
//! [`OpReport`] JSON line (bytes in/out, stripes, retries, degraded
//! reads, repair triggers, wall/queue/compute time) to the process-wide
//! op log — a file named by `GALLOPER_OP_LOG`, or any writer installed
//! with [`set_op_log`].

use std::cell::Cell;
use std::collections::HashMap;
use std::io::Write;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use crate::json::Json;
use crate::trace::global_trace;

/// The ambient operation context: which operation this thread is
/// working for, and the span that any new child span should hang off.
/// `op == 0` means "no operation in progress".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OpContext {
    /// Operation id (process-unique, 0 = none).
    pub op: u64,
    /// Current span id within the operation (0 = none).
    pub span: u64,
}

impl OpContext {
    /// The context with no operation.
    pub const NONE: OpContext = OpContext { op: 0, span: 0 };

    /// Whether an operation is in progress.
    pub fn is_active(&self) -> bool {
        self.op != 0
    }
}

thread_local! {
    static CURRENT: Cell<OpContext> = const { Cell::new(OpContext::NONE) };
}

static NEXT_OP: AtomicU64 = AtomicU64::new(1);
static NEXT_SPAN: AtomicU64 = AtomicU64::new(1);

/// A per-process namespace for op and span ids: the process id shifted
/// into the high half. Ids minted on different machines of a cluster
/// (gateway, daemons) therefore never collide, so a context carried
/// across the wire and installed in another process still names one
/// globally-unique operation — the property that lets per-node trace
/// rings be concatenated into a single connected tree. The low half
/// gives each process 2³² ids before wrap, far beyond any run here.
fn id_base() -> u64 {
    static BASE: OnceLock<u64> = OnceLock::new();
    *BASE.get_or_init(|| (std::process::id() as u64) << 32)
}

/// The calling thread's current context ([`OpContext::NONE`] outside
/// any operation).
pub fn current() -> OpContext {
    CURRENT.with(|c| c.get())
}

/// A fresh cluster-unique span id (pid-namespaced; see `id_base`).
pub fn next_span_id() -> u64 {
    id_base() | (NEXT_SPAN.fetch_add(1, Ordering::Relaxed) & 0xFFFF_FFFF)
}

/// Installs `ctx` as the calling thread's context until the guard
/// drops. This is how executors (the codec worker pool, the repair
/// queue) run work "inside" the operation that submitted it.
pub fn install(ctx: OpContext) -> ContextGuard {
    ContextGuard {
        prev: CURRENT.with(|c| c.replace(ctx)),
    }
}

/// Guard from [`install`]; restores the previous context on drop.
#[derive(Debug)]
pub struct ContextGuard {
    prev: OpContext,
}

impl Drop for ContextGuard {
    fn drop(&mut self) {
        CURRENT.with(|c| c.set(self.prev));
    }
}

/// Opens a span. If the thread already has an operation in progress the
/// span joins it as a child; otherwise a new operation id is allocated
/// and this span becomes its root. Either way the span installs itself
/// as the current context, so spans (and pool tasks) opened inside it
/// become its children. The span is recorded into the global trace ring
/// on drop — only when tracing is enabled, so the disabled cost is one
/// atomic load plus two thread-local copies.
pub fn span(name: &'static str, cat: &'static str) -> OpSpan {
    let prev = current();
    let (op, parent) = if prev.is_active() {
        (prev.op, prev.span)
    } else {
        (
            id_base() | (NEXT_OP.fetch_add(1, Ordering::Relaxed) & 0xFFFF_FFFF),
            0,
        )
    };
    let id = next_span_id();
    let guard = install(OpContext { op, span: id });
    OpSpan {
        name,
        cat,
        op,
        id,
        parent,
        _guard: guard,
        start: Instant::now(),
        record: global_trace().is_enabled(),
    }
}

/// An open span; see [`span`]. Records itself on drop.
#[derive(Debug)]
pub struct OpSpan {
    name: &'static str,
    cat: &'static str,
    op: u64,
    id: u64,
    parent: u64,
    _guard: ContextGuard,
    start: Instant,
    record: bool,
}

impl OpSpan {
    /// The operation this span belongs to.
    pub fn op(&self) -> u64 {
        self.op
    }

    /// This span's id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Whether this span started its operation (no parent span).
    pub fn is_root(&self) -> bool {
        self.parent == 0
    }

    /// The context this span installed (for hand-off to deferred work).
    pub fn context(&self) -> OpContext {
        OpContext {
            op: self.op,
            span: self.id,
        }
    }

    /// Elapsed time so far, in microseconds.
    pub fn elapsed_us(&self) -> u64 {
        self.start.elapsed().as_micros() as u64
    }
}

impl Drop for OpSpan {
    fn drop(&mut self) {
        if self.record {
            let dur_us = self.start.elapsed().as_micros() as u64;
            global_trace().record_span_full(
                self.name,
                self.cat,
                self.start,
                dur_us,
                self.op,
                self.id,
                self.parent,
            );
        }
    }
}

/// Records an instant event tagged with the current context (no-op
/// while tracing is disabled).
pub fn instant(name: &str, cat: &str) {
    global_trace().record_instant(name, cat);
}

// ---------------------------------------------------------------------------
// Per-operation accumulators: cross-thread queue/compute attribution.
// ---------------------------------------------------------------------------

/// Queue-wait and compute time accumulated for one live operation by
/// whichever threads end up doing its work.
#[derive(Debug, Default)]
pub struct OpAccum {
    queue_us: AtomicU64,
    compute_us: AtomicU64,
}

impl OpAccum {
    /// Total queue wait attributed so far, µs.
    pub fn queue_us(&self) -> u64 {
        self.queue_us.load(Ordering::Relaxed)
    }

    /// Total compute time attributed so far, µs.
    pub fn compute_us(&self) -> u64 {
        self.compute_us.load(Ordering::Relaxed)
    }
}

fn live_ops() -> &'static Mutex<HashMap<u64, Arc<OpAccum>>> {
    static LIVE: OnceLock<Mutex<HashMap<u64, Arc<OpAccum>>>> = OnceLock::new();
    LIVE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Registers an accumulator for `op`; dropping the tracker
/// unregisters it. Worker threads attribute via [`add_queue_us`] /
/// [`add_compute_us`] while the tracker is live.
pub fn track(op: u64) -> OpTracker {
    let accum = Arc::new(OpAccum::default());
    live_ops().lock().unwrap().insert(op, accum.clone());
    OpTracker { op, accum }
}

/// Live-operation handle from [`track`].
#[derive(Debug)]
pub struct OpTracker {
    op: u64,
    accum: Arc<OpAccum>,
}

impl OpTracker {
    /// The tracked operation id.
    pub fn op(&self) -> u64 {
        self.op
    }

    /// The accumulator (readable after workers have reported).
    pub fn accum(&self) -> &OpAccum {
        &self.accum
    }
}

impl Drop for OpTracker {
    fn drop(&mut self) {
        live_ops().lock().unwrap().remove(&self.op);
    }
}

/// Attributes `us` of queue wait to operation `op` (no-op when the
/// operation is not tracked or `op == 0`).
pub fn add_queue_us(op: u64, us: u64) {
    if op == 0 {
        return;
    }
    if let Some(a) = live_ops().lock().unwrap().get(&op) {
        a.queue_us.fetch_add(us, Ordering::Relaxed);
    }
}

/// Attributes `us` of compute time to operation `op` (no-op when the
/// operation is not tracked or `op == 0`).
pub fn add_compute_us(op: u64, us: u64) {
    if op == 0 {
        return;
    }
    if let Some(a) = live_ops().lock().unwrap().get(&op) {
        a.compute_us.fetch_add(us, Ordering::Relaxed);
    }
}

// ---------------------------------------------------------------------------
// OpReport: the structured per-operation record.
// ---------------------------------------------------------------------------

/// A structured summary of one top-level operation, emitted as a JSON
/// line to the op log. Field meanings follow the DFS: `bytes_in` is
/// what the operation ingested (object bytes for `put`, store-block
/// bytes for `get`), `bytes_out` what it produced.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct OpReport {
    /// Operation id, matching the trace's `op` tags.
    pub op: u64,
    /// Operation kind (`"put"`, `"get"`, `"fsck"`, ...).
    pub kind: &'static str,
    /// Object key or other operation target.
    pub key: String,
    /// Whether the operation succeeded.
    pub ok: bool,
    /// Bytes ingested.
    pub bytes_in: u64,
    /// Bytes produced.
    pub bytes_out: u64,
    /// Coding stripes touched.
    pub stripes: u64,
    /// Read retries taken across transient faults.
    pub retries: u64,
    /// Coding groups that needed a degraded decode.
    pub degraded_reads: u64,
    /// Repairs this operation triggered (enqueued or executed).
    pub repair_triggers: u64,
    /// End-to-end wall time, µs.
    pub wall_us: u64,
    /// Pool queue wait attributed to this operation, µs.
    pub queue_us: u64,
    /// Coding compute attributed to this operation, µs.
    pub compute_us: u64,
}

impl OpReport {
    /// An empty report for operation `op`.
    pub fn new(op: u64, kind: &'static str, key: impl Into<String>) -> OpReport {
        OpReport {
            op,
            kind,
            key: key.into(),
            ok: true,
            ..OpReport::default()
        }
    }

    /// The report as a JSON object (one op-log line).
    pub fn to_json(&self) -> Json {
        Json::object()
            .field("op", self.op)
            .field("kind", self.kind)
            .field("key", self.key.as_str())
            .field("ok", self.ok)
            .field("bytes_in", self.bytes_in)
            .field("bytes_out", self.bytes_out)
            .field("stripes", self.stripes)
            .field("retries", self.retries)
            .field("degraded_reads", self.degraded_reads)
            .field("repair_triggers", self.repair_triggers)
            .field("wall_us", self.wall_us)
            .field("queue_us", self.queue_us)
            .field("compute_us", self.compute_us)
    }

    /// Writes the report to the op log, if one is installed.
    pub fn emit(&self) {
        let mut guard = op_log().lock().unwrap();
        if let Some(w) = guard.as_mut() {
            let _ = writeln!(w, "{}", self.to_json().render());
            let _ = w.flush();
        }
    }
}

fn op_log() -> &'static Mutex<Option<Box<dyn Write + Send>>> {
    static LOG: OnceLock<Mutex<Option<Box<dyn Write + Send>>>> = OnceLock::new();
    LOG.get_or_init(|| Mutex::new(None))
}

/// Installs (or, with `None`, removes) the process-wide op-log writer.
/// [`crate::init_from_env`] points it at the file named by
/// `GALLOPER_OP_LOG`; tests install in-memory writers.
pub fn set_op_log(writer: Option<Box<dyn Write + Send>>) {
    *op_log().lock().unwrap() = writer;
}

/// Whether an op-log writer is installed (lets hot paths skip report
/// assembly entirely when nobody is listening).
pub fn op_log_enabled() -> bool {
    op_log().lock().unwrap().is_some()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nested_spans_share_op_and_chain_parents() {
        let root = span("root", "test");
        assert!(root.is_root());
        assert!(current().is_active());
        assert_eq!(current().op, root.op());
        {
            let child = span("child", "test");
            assert!(!child.is_root());
            assert_eq!(child.op(), root.op());
            assert_eq!(current().span, child.id());
        }
        // Child restored the parent's context on drop.
        assert_eq!(current().span, root.id());
        drop(root);
        assert_eq!(current(), OpContext::NONE);
    }

    #[test]
    fn sibling_roots_get_distinct_ops() {
        let a = span("a", "test");
        let a_op = a.op();
        drop(a);
        let b = span("b", "test");
        assert_ne!(a_op, b.op());
    }

    #[test]
    fn install_is_scoped() {
        let ctx = OpContext { op: 7, span: 9 };
        {
            let _g = install(ctx);
            assert_eq!(current(), ctx);
            let child = span("c", "test");
            assert_eq!(child.op(), 7);
            assert!(!child.is_root());
        }
        assert_eq!(current(), OpContext::NONE);
    }

    #[test]
    fn tracker_attributes_and_unregisters() {
        let t = track(1234);
        add_queue_us(1234, 10);
        add_compute_us(1234, 20);
        add_queue_us(0, 99); // no-op
        assert_eq!(t.accum().queue_us(), 10);
        assert_eq!(t.accum().compute_us(), 20);
        drop(t);
        add_queue_us(1234, 10); // silently ignored once untracked
        assert!(!live_ops().lock().unwrap().contains_key(&1234));
    }

    #[test]
    fn report_json_round_trips() {
        let mut r = OpReport::new(5, "get", "movie.bin");
        r.bytes_out = 4096;
        r.retries = 2;
        let parsed = crate::json::parse(&r.to_json().render()).unwrap();
        assert_eq!(parsed.get("kind").unwrap().as_str(), Some("get"));
        assert_eq!(parsed.get("retries").unwrap().as_f64(), Some(2.0));
        assert_eq!(parsed.get("ok"), Some(&Json::Bool(true)));
    }
}
