//! Chrome `trace_event` format builder.
//!
//! Emits the JSON Object Format described in the Trace Event Format
//! spec: `{"traceEvents": [...]}` with `ph:"X"` complete events and
//! `ph:"M"` metadata records. The output loads in Perfetto and
//! `chrome://tracing`. Timestamps and durations are microseconds.

use crate::json::Json;

/// Builder for a Chrome trace document.
#[derive(Debug, Default)]
pub struct ChromeTrace {
    events: Vec<Json>,
}

impl ChromeTrace {
    /// An empty trace.
    pub fn new() -> ChromeTrace {
        ChromeTrace::default()
    }

    /// Names a process (shown as a track group in viewers).
    pub fn name_process(&mut self, pid: u64, name: &str) {
        self.events.push(
            Json::object()
                .field("name", "process_name")
                .field("ph", "M")
                .field("pid", pid)
                .field("tid", 0u64)
                .field("args", Json::object().field("name", name)),
        );
    }

    /// Names a thread (one track within a process group).
    pub fn name_thread(&mut self, pid: u64, tid: u64, name: &str) {
        self.events.push(
            Json::object()
                .field("name", "thread_name")
                .field("ph", "M")
                .field("pid", pid)
                .field("tid", tid)
                .field("args", Json::object().field("name", name)),
        );
    }

    /// Adds a complete (`ph:"X"`) event: a span from `ts_us` lasting
    /// `dur_us`.
    pub fn complete(&mut self, name: &str, cat: &str, pid: u64, tid: u64, ts_us: u64, dur_us: u64) {
        self.events.push(
            Json::object()
                .field("name", name)
                .field("cat", cat)
                .field("ph", "X")
                .field("ts", ts_us)
                .field("dur", dur_us)
                .field("pid", pid)
                .field("tid", tid),
        );
    }

    /// Like [`complete`](Self::complete) with an extra `args` object of
    /// key/value details shown in the viewer's selection panel.
    #[allow(clippy::too_many_arguments)]
    pub fn complete_with_args(
        &mut self,
        name: &str,
        cat: &str,
        pid: u64,
        tid: u64,
        ts_us: u64,
        dur_us: u64,
        args: Json,
    ) {
        self.events.push(
            Json::object()
                .field("name", name)
                .field("cat", cat)
                .field("ph", "X")
                .field("ts", ts_us)
                .field("dur", dur_us)
                .field("pid", pid)
                .field("tid", tid)
                .field("args", args),
        );
    }

    /// Adds a flow-start (`ph:"s"`) event. Flow events with the same
    /// `id` draw an arrow between tracks in the viewer — record the
    /// start on the producing thread and the end (see
    /// [`flow_end`](Self::flow_end)) on the consuming one.
    pub fn flow_start(&mut self, name: &str, cat: &str, id: u64, pid: u64, tid: u64, ts_us: u64) {
        self.flow("s", name, cat, id, pid, tid, ts_us);
    }

    /// Adds a flow-end (`ph:"f"`, binding to the enclosing slice) event
    /// closing the arrow opened by [`flow_start`](Self::flow_start).
    pub fn flow_end(&mut self, name: &str, cat: &str, id: u64, pid: u64, tid: u64, ts_us: u64) {
        self.flow("f", name, cat, id, pid, tid, ts_us);
    }

    #[allow(clippy::too_many_arguments)]
    fn flow(&mut self, ph: &str, name: &str, cat: &str, id: u64, pid: u64, tid: u64, ts_us: u64) {
        let mut e = Json::object()
            .field("name", name)
            .field("cat", cat)
            .field("ph", ph)
            .field("id", id)
            .field("ts", ts_us)
            .field("pid", pid)
            .field("tid", tid);
        if ph == "f" {
            e = e.field("bp", "e");
        }
        self.events.push(e);
    }

    /// Adds an instant (`ph:"i"`) event.
    pub fn instant(&mut self, name: &str, cat: &str, pid: u64, tid: u64, ts_us: u64) {
        self.events.push(
            Json::object()
                .field("name", name)
                .field("cat", cat)
                .field("ph", "i")
                .field("ts", ts_us)
                .field("s", "t")
                .field("pid", pid)
                .field("tid", tid),
        );
    }

    /// Number of events added so far (metadata included).
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events have been added.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Finishes the document.
    pub fn into_json(self) -> Json {
        Json::object()
            .field("traceEvents", Json::Arr(self.events))
            .field("displayTimeUnit", "ms")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_spec_shaped_events() {
        let mut t = ChromeTrace::new();
        t.name_process(1, "sim");
        t.name_thread(1, 2, "disk");
        t.complete("read", "disk", 1, 2, 10, 5);
        t.instant("fail", "ctrl", 1, 2, 12);
        assert_eq!(t.len(), 4);
        let json = t.into_json();
        let events = json.get("traceEvents").unwrap().as_array().unwrap();
        assert_eq!(events[2].get("ph").unwrap().as_str(), Some("X"));
        assert_eq!(events[2].get("ts").unwrap().as_f64(), Some(10.0));
        assert_eq!(events[2].get("dur").unwrap().as_f64(), Some(5.0));
        assert_eq!(events[3].get("ph").unwrap().as_str(), Some("i"));
    }

    #[test]
    fn flow_events_pair_by_id() {
        let mut t = ChromeTrace::new();
        t.flow_start("op", "flow", 9, 0, 1, 100);
        t.flow_end("op", "flow", 9, 0, 2, 100);
        let json = t.into_json();
        let events = json.get("traceEvents").unwrap().as_array().unwrap();
        assert_eq!(events[0].get("ph").unwrap().as_str(), Some("s"));
        assert_eq!(events[1].get("ph").unwrap().as_str(), Some("f"));
        assert_eq!(events[1].get("bp").unwrap().as_str(), Some("e"));
        assert_eq!(
            events[0].get("id").unwrap().as_f64(),
            events[1].get("id").unwrap().as_f64()
        );
    }

    #[test]
    fn complete_with_args_embeds_details() {
        let mut t = ChromeTrace::new();
        t.complete_with_args(
            "repair",
            "sim",
            0,
            0,
            0,
            100,
            Json::object().field("mb", 64.0),
        );
        let json = t.into_json();
        let events = json.get("traceEvents").unwrap().as_array().unwrap();
        let args = events[0].get("args").unwrap();
        assert_eq!(args.get("mb").unwrap().as_f64(), Some(64.0));
    }
}
