//! Differential property suite for the kernel backends: SWAR and SIMD
//! must be byte-identical to the scalar reference for every coefficient,
//! across ragged lengths and misaligned sub-slices.
//!
//! Under Miri (which vets the `unsafe` intrinsics when they are
//! interpretable) the sweep is thinned to keep the run tractable; the
//! native run covers all 256 coefficients.

use galloper_gf::kernel::{self, Backend};
use galloper_gf::Gf256;

#[cfg(not(miri))]
const LENS: &[usize] = &[0, 1, 7, 8, 9, 63, 64, 65, 1031];
#[cfg(miri)]
const LENS: &[usize] = &[0, 1, 8, 9, 65];

#[cfg(not(miri))]
const OFFSETS: &[usize] = &[0, 1, 3];
#[cfg(miri)]
const OFFSETS: &[usize] = &[0, 1];

#[cfg(not(miri))]
fn coefficients() -> Vec<u8> {
    (0..=255).collect()
}

#[cfg(miri)]
fn coefficients() -> Vec<u8> {
    vec![0, 1, 2, 3, 0x1D, 93, 0x80, 0xFF]
}

/// Deterministic non-trivial payload, long enough for every
/// (offset, length) pair.
fn base_payload() -> Vec<u8> {
    (0..1040).map(|i| ((i * 31 + 7) % 256) as u8).collect()
}

#[test]
fn every_backend_matches_scalar_mul_add() {
    let base = base_payload();
    let dirty: Vec<u8> = base
        .iter()
        .map(|b| b.wrapping_mul(13).wrapping_add(5))
        .collect();
    for backend in kernel::available_backends() {
        for &c in &coefficients() {
            for &len in LENS {
                for &off in OFFSETS {
                    let src = &base[off..off + len];
                    let mut want = dirty[off..off + len].to_vec();
                    kernel::mul_add_with(Backend::Scalar, c, src, &mut want);
                    let mut got = dirty[off..off + len].to_vec();
                    kernel::mul_add_with(backend, c, src, &mut got);
                    assert_eq!(got, want, "{backend} mul_add c={c} len={len} off={off}");
                }
            }
        }
    }
}

#[test]
fn every_backend_matches_scalar_mul() {
    let base = base_payload();
    for backend in kernel::available_backends() {
        for &c in &coefficients() {
            for &len in LENS {
                for &off in OFFSETS {
                    let src = &base[off..off + len];
                    let mut want = vec![0xEEu8; len];
                    kernel::mul_with(Backend::Scalar, c, src, &mut want);
                    let mut got = vec![0xEEu8; len];
                    kernel::mul_with(backend, c, src, &mut got);
                    assert_eq!(got, want, "{backend} mul c={c} len={len} off={off}");
                }
            }
        }
    }
}

#[test]
fn scalar_reference_matches_field_arithmetic() {
    // The other two backends are pinned to scalar; scalar itself is
    // pinned to the typed field element, closing the loop.
    let base = base_payload();
    for &c in &coefficients() {
        let src = &base[..257];
        let mut out = vec![0u8; src.len()];
        kernel::mul_with(Backend::Scalar, c, src, &mut out);
        for (i, (&s, &o)) in src.iter().zip(&out).enumerate() {
            assert_eq!(o, (Gf256::new(c) * Gf256::new(s)).value(), "c={c} i={i}");
        }
    }
}

#[test]
fn dispatched_wrappers_match_scalar_on_misaligned_tails() {
    // The public (counted + fast-pathed) entry points must agree with
    // the reference too, including the 0/1 fast paths.
    let base = base_payload();
    let dirty: Vec<u8> = base.iter().map(|b| b.wrapping_add(101)).collect();
    for &c in &[0u8, 1, 2, 93, 0xFF] {
        for &len in LENS {
            for &off in OFFSETS {
                let src = &base[off..off + len];
                let mut want = dirty[off..off + len].to_vec();
                kernel::mul_add_with(Backend::Scalar, c, src, &mut want);
                let mut got = dirty[off..off + len].to_vec();
                kernel::mul_add(c, src, &mut got);
                assert_eq!(got, want, "dispatch mul_add c={c} len={len} off={off}");
            }
        }
    }
}

#[test]
fn simd_is_available_on_x86_64_and_aarch64() {
    // On the architectures we ship shuffle kernels for, auto-dispatch
    // should find them (all current x86-64 dev/CI hardware has SSSE3).
    // Miri reports no CPU features, so skip there.
    if cfg!(miri) {
        return;
    }
    #[cfg(any(target_arch = "x86_64", target_arch = "aarch64"))]
    assert!(
        Backend::Simd.is_available(),
        "expected shuffle kernels on this architecture"
    );
}
