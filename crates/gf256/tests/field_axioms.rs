//! Property-based verification that GF(2⁸) as implemented really is a field,
//! and that the slice kernels agree with element-wise arithmetic.

use galloper_gf::{slice, Gf256};
use proptest::prelude::*;

fn elem() -> impl Strategy<Value = Gf256> {
    any::<u8>().prop_map(Gf256::new)
}

proptest! {
    #[test]
    fn addition_is_commutative(a in elem(), b in elem()) {
        prop_assert_eq!(a + b, b + a);
    }

    #[test]
    fn addition_is_associative(a in elem(), b in elem(), c in elem()) {
        prop_assert_eq!((a + b) + c, a + (b + c));
    }

    #[test]
    fn multiplication_is_commutative(a in elem(), b in elem()) {
        prop_assert_eq!(a * b, b * a);
    }

    #[test]
    fn multiplication_is_associative(a in elem(), b in elem(), c in elem()) {
        prop_assert_eq!((a * b) * c, a * (b * c));
    }

    #[test]
    fn multiplication_distributes_over_addition(a in elem(), b in elem(), c in elem()) {
        prop_assert_eq!(a * (b + c), a * b + a * c);
    }

    #[test]
    fn additive_inverse_is_self(a in elem()) {
        prop_assert_eq!(a + a, Gf256::ZERO);
        prop_assert_eq!(-a, a);
    }

    #[test]
    fn no_zero_divisors(a in elem(), b in elem()) {
        if (a * b).is_zero() {
            prop_assert!(a.is_zero() || b.is_zero());
        }
    }

    #[test]
    fn pow_is_repeated_multiplication(a in elem(), e in 0u32..600) {
        let mut acc = Gf256::ONE;
        for _ in 0..e {
            acc *= a;
        }
        prop_assert_eq!(a.pow(e), acc);
    }

    #[test]
    fn log_exp_agree_with_mul(a in elem(), b in elem()) {
        if let (Some(la), Some(lb)) = (a.log(), b.log()) {
            let expected = Gf256::exp(la as usize + lb as usize);
            prop_assert_eq!(a * b, expected);
        }
    }

    #[test]
    fn mul_slice_add_matches_scalar(c in any::<u8>(), data in proptest::collection::vec(any::<u8>(), 0..300), acc in proptest::collection::vec(any::<u8>(), 0..300)) {
        let n = data.len().min(acc.len());
        let (data, acc) = (&data[..n], &acc[..n]);
        let mut dst = acc.to_vec();
        slice::mul_slice_add(c, data, &mut dst);
        for i in 0..n {
            let want = Gf256::new(acc[i]) + Gf256::new(c) * Gf256::new(data[i]);
            prop_assert_eq!(dst[i], want.value());
        }
    }

    #[test]
    fn mul_slice_is_invertible(c in 1u8..=255, data in proptest::collection::vec(any::<u8>(), 0..300)) {
        let mut fwd = vec![0u8; data.len()];
        slice::mul_slice(c, &data, &mut fwd);
        let cinv = Gf256::new(c).inv().unwrap().value();
        let mut back = vec![0u8; data.len()];
        slice::mul_slice(cinv, &fwd, &mut back);
        prop_assert_eq!(back, data);
    }

    #[test]
    fn xor_slice_is_involution(a in proptest::collection::vec(any::<u8>(), 0..300), b in proptest::collection::vec(any::<u8>(), 0..300)) {
        let n = a.len().min(b.len());
        let (a, b) = (&a[..n], &b[..n]);
        let mut dst = b.to_vec();
        slice::xor_slice(a, &mut dst);
        slice::xor_slice(a, &mut dst);
        prop_assert_eq!(dst.as_slice(), b);
    }
}
