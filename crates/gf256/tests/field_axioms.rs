//! Randomized verification that GF(2⁸) as implemented really is a field,
//! and that the slice kernels agree with element-wise arithmetic.
//!
//! (Formerly proptest-based; the offline build environment has no
//! crates.io access, so these now run seeded cases via `galloper-testkit`.)

use galloper_gf::{slice, Gf256};
use galloper_testkit::{run_cases, TestRng};

const CASES: u64 = 256;

fn elem(rng: &mut TestRng) -> Gf256 {
    Gf256::new(rng.u8())
}

#[test]
fn addition_is_commutative() {
    run_cases(CASES, 0x01, |rng| {
        let (a, b) = (elem(rng), elem(rng));
        assert_eq!(a + b, b + a);
    });
}

#[test]
fn addition_is_associative() {
    run_cases(CASES, 0x02, |rng| {
        let (a, b, c) = (elem(rng), elem(rng), elem(rng));
        assert_eq!((a + b) + c, a + (b + c));
    });
}

#[test]
fn multiplication_is_commutative() {
    run_cases(CASES, 0x03, |rng| {
        let (a, b) = (elem(rng), elem(rng));
        assert_eq!(a * b, b * a);
    });
}

#[test]
fn multiplication_is_associative() {
    run_cases(CASES, 0x04, |rng| {
        let (a, b, c) = (elem(rng), elem(rng), elem(rng));
        assert_eq!((a * b) * c, a * (b * c));
    });
}

#[test]
fn multiplication_distributes_over_addition() {
    run_cases(CASES, 0x05, |rng| {
        let (a, b, c) = (elem(rng), elem(rng), elem(rng));
        assert_eq!(a * (b + c), a * b + a * c);
    });
}

#[test]
fn additive_inverse_is_self() {
    run_cases(CASES, 0x06, |rng| {
        let a = elem(rng);
        assert_eq!(a + a, Gf256::ZERO);
        assert_eq!(-a, a);
    });
}

#[test]
fn no_zero_divisors() {
    run_cases(CASES, 0x07, |rng| {
        let (a, b) = (elem(rng), elem(rng));
        if (a * b).is_zero() {
            assert!(a.is_zero() || b.is_zero());
        }
    });
}

#[test]
fn pow_is_repeated_multiplication() {
    run_cases(CASES, 0x08, |rng| {
        let a = elem(rng);
        let e = rng.usize_in(0, 600) as u32;
        let mut acc = Gf256::ONE;
        for _ in 0..e {
            acc *= a;
        }
        assert_eq!(a.pow(e), acc);
    });
}

#[test]
fn log_exp_agree_with_mul() {
    run_cases(CASES, 0x09, |rng| {
        let (a, b) = (elem(rng), elem(rng));
        if let (Some(la), Some(lb)) = (a.log(), b.log()) {
            let expected = Gf256::exp(la as usize + lb as usize);
            assert_eq!(a * b, expected);
        }
    });
}

#[test]
fn mul_slice_add_matches_scalar() {
    run_cases(CASES, 0x0A, |rng| {
        let c = rng.u8();
        let n = rng.usize_in(0, 300);
        let data = rng.bytes(n);
        let acc = rng.bytes(n);
        let mut dst = acc.clone();
        slice::mul_slice_add(c, &data, &mut dst);
        for i in 0..n {
            let want = Gf256::new(acc[i]) + Gf256::new(c) * Gf256::new(data[i]);
            assert_eq!(dst[i], want.value());
        }
    });
}

#[test]
fn mul_slice_is_invertible() {
    run_cases(CASES, 0x0B, |rng| {
        let c = rng.usize_in(1, 256) as u8;
        let len = rng.usize_in(0, 300);
        let data = rng.bytes(len);
        let mut fwd = vec![0u8; data.len()];
        slice::mul_slice(c, &data, &mut fwd);
        let cinv = Gf256::new(c).inv().unwrap().value();
        let mut back = vec![0u8; data.len()];
        slice::mul_slice(cinv, &fwd, &mut back);
        assert_eq!(back, data);
    });
}

#[test]
fn xor_slice_is_involution() {
    run_cases(CASES, 0x0C, |rng| {
        let n = rng.usize_in(0, 300);
        let a = rng.bytes(n);
        let b = rng.bytes(n);
        let mut dst = b.clone();
        slice::xor_slice(&a, &mut dst);
        slice::xor_slice(&a, &mut dst);
        assert_eq!(dst, b);
    });
}
