//! Arithmetic over the finite field GF(2⁸), the substrate every erasure code
//! in this workspace is built on.
//!
//! The field is realized as polynomials over GF(2) modulo the primitive
//! polynomial `x⁸ + x⁴ + x³ + x² + 1` (`0x11D`), the same representation used
//! by Intel ISA-L and most storage-oriented Reed–Solomon implementations.
//! Addition is XOR; multiplication is table-driven. The paper's prototype
//! performs "all coding operations as vector/matrix multiplications on a
//! finite field" of size 2⁸ (§VI); this crate is the from-scratch stand-in
//! for the ISA-L kernels it used.
//!
//! Two API layers are provided:
//!
//! * [`Gf256`] — a typed field element with operator overloads, for code
//!   where clarity matters (matrix construction, tests, proofs of
//!   invariants).
//! * [mod@slice] — raw `u8` bulk kernels (`mul_slice_add` and friends) used by
//!   the hot encode/decode paths, with XOR fast paths that work on whole
//!   words at a time. The byte loops behind them live in [mod@kernel],
//!   which picks a scalar, SWAR, or SIMD backend at startup
//!   (`GALLOPER_KERNEL` overrides the choice).
//!
//! # Examples
//!
//! ```
//! use galloper_gf::Gf256;
//!
//! let a = Gf256::new(0x53);
//! let b = Gf256::new(0xCA);
//! // Multiplication distributes over addition (= XOR).
//! let c = Gf256::new(0x0F);
//! assert_eq!(a * (b + c), a * b + a * c);
//! // Every non-zero element has a multiplicative inverse.
//! assert_eq!(a * a.inv().unwrap(), Gf256::ONE);
//! ```

// `unsafe` is denied crate-wide and allowed back in exactly one place:
// the feature-gated `std::arch` intrinsics in `kernel::simd` (see the
// safety argument at the top of that module).
#![deny(unsafe_code)]
#![warn(missing_docs)]

mod element;
mod poly;
mod tables;
mod wide;

pub mod kernel;
pub mod slice;

pub use element::Gf256;
pub use poly::Polynomial;
pub use tables::{EXP_TABLE, LOG_TABLE, MUL_HI_NIBBLE, MUL_LO_NIBBLE, PRIMITIVE_POLY};
pub use wide::{Gf65536, PRIMITIVE_POLY_16};

/// The number of elements in the field.
pub const FIELD_SIZE: usize = 256;

/// The multiplicative order of the field (number of non-zero elements).
pub const FIELD_ORDER: usize = 255;
