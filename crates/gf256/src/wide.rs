//! GF(2¹⁶): the larger field the paper points to for wide codes.
//!
//! §VI: "The size of the finite field [2⁸] is sufficient for most values
//! of k, l, g in practice, as long as k + l + g < 2⁸. For larger values
//! …, we can also increase the size of the field." [`Gf65536`] provides
//! that upgrade path: the same API shape as [`Gf256`](crate::Gf256) over
//! `x¹⁶ + x¹² + x³ + x + 1`, with lazily built 384 KiB log/exp tables.
//!
//! The block-oriented code constructions in this workspace currently run
//! over GF(2⁸) (ample for the paper's parameter ranges); this module is
//! the drop-in element type for a wide-code generalization and is tested
//! to the same axioms.

// In characteristic 2, addition IS xor and a/b IS a·b⁻¹; clippy's
// "suspicious operator in arithmetic impl" heuristic does not apply.
#![allow(clippy::suspicious_arithmetic_impl, clippy::suspicious_op_assign_impl)]

use core::fmt;
use core::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};
use std::sync::OnceLock;

/// The primitive polynomial for GF(2¹⁶): x¹⁶ + x¹² + x³ + x + 1.
pub const PRIMITIVE_POLY_16: u32 = 0x1100B;

struct Tables {
    exp: Vec<u16>, // length 2·65535 for reduction-free indexing
    log: Vec<u16>, // length 65536
}

fn tables() -> &'static Tables {
    static TABLES: OnceLock<Tables> = OnceLock::new();
    TABLES.get_or_init(|| {
        let order = 65535usize;
        let mut exp = vec![0u16; order * 2];
        let mut log = vec![0u16; 65536];
        let mut x: u32 = 1;
        for (i, e) in exp[..order].iter_mut().enumerate() {
            *e = x as u16;
            log[x as usize] = i as u16;
            x <<= 1;
            if x & 0x10000 != 0 {
                x ^= PRIMITIVE_POLY_16;
            }
        }
        debug_assert_eq!(x, 1, "the polynomial must be primitive");
        for i in order..2 * order {
            exp[i] = exp[i - order];
        }
        Tables { exp, log }
    })
}

/// An element of GF(2¹⁶).
///
/// # Examples
///
/// ```
/// use galloper_gf::Gf65536;
///
/// let a = Gf65536::new(0x1234);
/// assert_eq!(a + a, Gf65536::ZERO);
/// assert_eq!(a * a.inv().unwrap(), Gf65536::ONE);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[repr(transparent)]
pub struct Gf65536(u16);

impl Gf65536 {
    /// The additive identity.
    pub const ZERO: Gf65536 = Gf65536(0);
    /// The multiplicative identity.
    pub const ONE: Gf65536 = Gf65536(1);
    /// The canonical generator (the polynomial `x`, value 2).
    pub const GENERATOR: Gf65536 = Gf65536(2);

    /// Wraps a value as a field element (total).
    #[inline]
    pub const fn new(value: u16) -> Self {
        Gf65536(value)
    }

    /// The underlying value.
    #[inline]
    pub const fn value(self) -> u16 {
        self.0
    }

    /// Whether this is zero.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// `α^i`, reduced mod 65535.
    pub fn exp(i: usize) -> Self {
        Gf65536(tables().exp[i % 65535])
    }

    /// Discrete log, or `None` for zero.
    pub fn log(self) -> Option<u16> {
        (self.0 != 0).then(|| tables().log[self.0 as usize])
    }

    /// Multiplicative inverse, or `None` for zero.
    pub fn inv(self) -> Option<Self> {
        if self.0 == 0 {
            None
        } else {
            let t = tables();
            Some(Gf65536(t.exp[65535 - t.log[self.0 as usize] as usize]))
        }
    }

    /// Exponentiation (`pow(0) == ONE`, including for zero).
    pub fn pow(self, mut e: u32) -> Self {
        if e == 0 {
            return Gf65536::ONE;
        }
        if self.0 == 0 {
            return Gf65536::ZERO;
        }
        e %= 65535;
        let t = tables();
        let log = t.log[self.0 as usize] as u64;
        Gf65536(t.exp[((log * e as u64) % 65535) as usize])
    }
}

impl fmt::Debug for Gf65536 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Gf65536({:#06x})", self.0)
    }
}

impl fmt::Display for Gf65536 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:04x}", self.0)
    }
}

impl From<u16> for Gf65536 {
    fn from(value: u16) -> Self {
        Gf65536(value)
    }
}

impl From<Gf65536> for u16 {
    fn from(value: Gf65536) -> Self {
        value.0
    }
}

impl Add for Gf65536 {
    type Output = Gf65536;
    #[inline]
    fn add(self, rhs: Gf65536) -> Gf65536 {
        Gf65536(self.0 ^ rhs.0)
    }
}

impl AddAssign for Gf65536 {
    fn add_assign(&mut self, rhs: Gf65536) {
        self.0 ^= rhs.0;
    }
}

impl Sub for Gf65536 {
    type Output = Gf65536;
    #[inline]
    fn sub(self, rhs: Gf65536) -> Gf65536 {
        self + rhs
    }
}

impl SubAssign for Gf65536 {
    fn sub_assign(&mut self, rhs: Gf65536) {
        self.0 ^= rhs.0;
    }
}

impl Neg for Gf65536 {
    type Output = Gf65536;
    fn neg(self) -> Gf65536 {
        self
    }
}

impl Mul for Gf65536 {
    type Output = Gf65536;
    #[inline]
    fn mul(self, rhs: Gf65536) -> Gf65536 {
        if self.0 == 0 || rhs.0 == 0 {
            return Gf65536::ZERO;
        }
        let t = tables();
        Gf65536(t.exp[t.log[self.0 as usize] as usize + t.log[rhs.0 as usize] as usize])
    }
}

impl MulAssign for Gf65536 {
    fn mul_assign(&mut self, rhs: Gf65536) {
        *self = *self * rhs;
    }
}

impl Div for Gf65536 {
    type Output = Gf65536;

    /// # Panics
    ///
    /// Panics on division by zero.
    fn div(self, rhs: Gf65536) -> Gf65536 {
        self * rhs.inv().expect("division by zero in GF(2^16)")
    }
}

impl DivAssign for Gf65536 {
    fn div_assign(&mut self, rhs: Gf65536) {
        *self = *self / rhs;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Schoolbook multiply for validation.
    fn slow_mul(a: u16, b: u16) -> u16 {
        let (mut a, mut b, mut acc) = (a as u32, b as u32, 0u32);
        while b != 0 {
            if b & 1 != 0 {
                acc ^= a;
            }
            a <<= 1;
            if a & 0x10000 != 0 {
                a ^= PRIMITIVE_POLY_16;
            }
            b >>= 1;
        }
        acc as u16
    }

    #[test]
    fn identities_and_inverses_on_samples() {
        // Sampled sweep (the full field is 65536 elements).
        for v in (1u32..=65535).step_by(251) {
            let a = Gf65536::new(v as u16);
            assert_eq!(a + Gf65536::ZERO, a);
            assert_eq!(a * Gf65536::ONE, a);
            assert_eq!(a * a.inv().unwrap(), Gf65536::ONE, "v = {v}");
            assert_eq!(a + a, Gf65536::ZERO);
        }
        assert_eq!(Gf65536::ZERO.inv(), None);
    }

    #[test]
    fn table_mul_matches_schoolbook() {
        for i in (0u32..=65535).step_by(911) {
            for j in (0u32..=65535).step_by(877) {
                let (a, b) = (i as u16, j as u16);
                assert_eq!(
                    (Gf65536::new(a) * Gf65536::new(b)).value(),
                    slow_mul(a, b),
                    "{a} * {b}"
                );
            }
        }
    }

    #[test]
    fn generator_has_full_order() {
        assert_eq!(Gf65536::GENERATOR.pow(65535), Gf65536::ONE);
        // Order divides 65535 = 3·5·17·257; full order means no proper
        // divisor works.
        for d in [3u32, 5, 17, 257, 21845, 13107, 3855, 255] {
            assert_ne!(
                Gf65536::GENERATOR.pow(65535 / d),
                Gf65536::ONE,
                "divisor {d}"
            );
        }
    }

    #[test]
    fn pow_edge_cases() {
        assert_eq!(Gf65536::ZERO.pow(0), Gf65536::ONE);
        assert_eq!(Gf65536::ZERO.pow(9), Gf65536::ZERO);
        let a = Gf65536::new(0xABCD);
        let mut acc = Gf65536::ONE;
        for e in 0..40 {
            assert_eq!(a.pow(e), acc);
            acc *= a;
        }
    }

    #[test]
    fn distributivity_on_samples() {
        for i in (1u32..=65535).step_by(4093) {
            for j in (1u32..=65535).step_by(3571) {
                let (a, b) = (Gf65536::new(i as u16), Gf65536::new(j as u16));
                let c = Gf65536::new(0x9E37);
                assert_eq!(a * (b + c), a * b + a * c);
                assert_eq!((a / b) * b, a);
            }
        }
    }

    #[test]
    fn formatting_and_conversions() {
        let a = Gf65536::new(0x1D2E);
        assert_eq!(format!("{a}"), "1d2e");
        assert_eq!(format!("{a:?}"), "Gf65536(0x1d2e)");
        let v: u16 = a.into();
        assert_eq!(Gf65536::from(v), a);
    }
}
