//! Compile-time generation of the exponent, logarithm, and multiplication
//! tables for GF(2⁸) with the primitive polynomial `0x11D`.
//!
//! All tables are `const`-evaluated, so the field costs nothing at startup
//! and the tables live in read-only memory.

/// The primitive polynomial defining the field: x⁸ + x⁴ + x³ + x² + 1.
///
/// This is the polynomial used by ISA-L, Jerasure, and the QR-code standard,
/// which makes test vectors from those ecosystems directly comparable.
pub const PRIMITIVE_POLY: u16 = 0x11D;

const fn gen_exp_log() -> ([u8; 512], [u8; 256]) {
    let mut exp = [0u8; 512];
    let mut log = [0u8; 256];
    let mut x: u16 = 1;
    let mut i = 0;
    while i < 255 {
        exp[i] = x as u8;
        log[x as usize] = i as u8;
        x <<= 1;
        if x & 0x100 != 0 {
            x ^= PRIMITIVE_POLY;
        }
        i += 1;
    }
    // Duplicate the cycle so `exp[log a + log b]` needs no modular reduction.
    let mut j = 255;
    while j < 512 {
        exp[j] = exp[j - 255];
        j += 1;
    }
    (exp, log)
}

const TABLES: ([u8; 512], [u8; 256]) = gen_exp_log();

/// `EXP_TABLE[i] = α^i` for the generator `α = x` (value 2), doubled in
/// length so that `EXP_TABLE[log(a) + log(b)]` is always in range.
pub static EXP_TABLE: [u8; 512] = TABLES.0;

/// `LOG_TABLE[a] = log_α(a)` for `a != 0`; `LOG_TABLE[0]` is unused (0).
pub static LOG_TABLE: [u8; 256] = TABLES.1;

const fn gen_mul() -> [[u8; 256]; 256] {
    let mut table = [[0u8; 256]; 256];
    let (exp, log) = (TABLES.0, TABLES.1);
    let mut a = 1;
    while a < 256 {
        let mut b = 1;
        while b < 256 {
            table[a][b] = exp[log[a] as usize + log[b] as usize];
            b += 1;
        }
        a += 1;
    }
    table
}

/// Full 64 KiB product table: `MUL_TABLE[a][b] = a · b`.
///
/// A row of this table is the natural unit for the bulk slice kernels: one
/// coefficient selects a 256-byte row that then drives a pure table-lookup
/// loop over the data.
pub static MUL_TABLE: [[u8; 256]; 256] = gen_mul();

const fn gen_nibble(shift: u32) -> [[u8; 16]; 256] {
    let (exp, log) = (TABLES.0, TABLES.1);
    let mut table = [[0u8; 16]; 256];
    let mut c = 1;
    while c < 256 {
        let mut x = 1;
        while x < 16 {
            let v = x << shift;
            table[c][x] = exp[log[c] as usize + log[v] as usize];
            x += 1;
        }
        c += 1;
    }
    table
}

/// Low-nibble split multiply table: `MUL_LO_NIBBLE[c][x] = c · x` for
/// `x < 16`.
///
/// Together with [`MUL_HI_NIBBLE`] this factors a full product through the
/// identity `c·s = c·(s & 0x0F) ^ c·(s & 0xF0)`: two 16-entry lookups per
/// byte instead of one 256-entry lookup. Sixteen entries is exactly one
/// SIMD register, which is what makes the `pshufb`/`vtbl` shuffle kernels
/// possible — the table row is broadcast once per slice call and every
/// data byte becomes two in-register shuffles.
pub static MUL_LO_NIBBLE: [[u8; 16]; 256] = gen_nibble(0);

/// High-nibble split multiply table: `MUL_HI_NIBBLE[c][x] = c · (x << 4)`
/// for `x < 16`. See [`MUL_LO_NIBBLE`].
pub static MUL_HI_NIBBLE: [[u8; 16]; 256] = gen_nibble(4);

#[cfg(test)]
mod tests {
    use super::*;

    /// Schoolbook carry-less multiply + reduction, used only to validate the
    /// tables against an independent implementation.
    fn slow_mul(a: u8, b: u8) -> u8 {
        let (mut a, mut b, mut acc) = (a as u16, b as u16, 0u16);
        while b != 0 {
            if b & 1 != 0 {
                acc ^= a;
            }
            a <<= 1;
            if a & 0x100 != 0 {
                a ^= PRIMITIVE_POLY;
            }
            b >>= 1;
        }
        acc as u8
    }

    #[test]
    fn exp_log_roundtrip() {
        for a in 1..=255u8 {
            assert_eq!(EXP_TABLE[LOG_TABLE[a as usize] as usize], a);
        }
    }

    #[test]
    fn exp_table_wraps() {
        for i in 0..255 {
            assert_eq!(EXP_TABLE[i], EXP_TABLE[i + 255]);
        }
    }

    #[test]
    fn generator_has_full_order() {
        // α^i must hit every non-zero element exactly once in 0..255.
        let mut seen = [false; 256];
        for (i, &e) in EXP_TABLE.iter().take(255).enumerate() {
            let v = e as usize;
            assert!(!seen[v], "α^{i} repeats value {v}");
            seen[v] = true;
        }
        assert!(!seen[0], "a power of the generator may never be zero");
    }

    #[test]
    fn nibble_tables_recompose_full_products() {
        for c in 0..=255u8 {
            for s in 0..=255u8 {
                let lo = MUL_LO_NIBBLE[c as usize][(s & 0x0F) as usize];
                let hi = MUL_HI_NIBBLE[c as usize][(s >> 4) as usize];
                assert_eq!(
                    lo ^ hi,
                    MUL_TABLE[c as usize][s as usize],
                    "nibble split disagrees at {c} * {s}"
                );
            }
        }
    }

    #[test]
    fn mul_table_matches_schoolbook() {
        for a in 0..=255u8 {
            for b in 0..=255u8 {
                assert_eq!(
                    MUL_TABLE[a as usize][b as usize],
                    slow_mul(a, b),
                    "mismatch at {a} * {b}"
                );
            }
        }
    }
}
