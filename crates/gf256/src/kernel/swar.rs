//! The portable SWAR backend: eight field multiplications per step using
//! plain `u64` arithmetic — no tables in the hot loop, no `unsafe`.
//!
//! A whole word of bytes is multiplied by the generator `x` at once:
//! shift every byte left within its lane, then fold the bytes that
//! overflowed back in with the reduction constant `0x1D`
//! (`PRIMITIVE_POLY` minus the `x⁸` term). Multiplication by an
//! arbitrary constant `c` is a fixed ladder of eight doublings with a
//! **masked** XOR per rung — `acc ^= x & broadcast(bit)` — so the hot
//! loop carries no data-dependent branch for the predictor to miss on
//! (the per-bit `if` was where the first cut of this backend lost to
//! scalar). Two words advance through the ladder together so the
//! doubling chains overlap instead of serializing. Because the lane
//! masks are position-based, the routine is endian-agnostic.

use crate::tables::{MUL_TABLE, PRIMITIVE_POLY};

const MSB: u64 = 0x8080_8080_8080_8080;
const POLY_LOW: u64 = (PRIMITIVE_POLY & 0xFF) as u64; // 0x1D

/// Multiplies every byte lane of `x` by the field generator (value 2).
///
/// `(x & MSB) >> 7` is `0x00` or `0x01` per lane; multiplying the whole
/// word by `0x1D` scales each of those lanes to `0x00`/`0x1D` without
/// cross-lane carries (the per-lane product is at most `0x1D`).
#[inline]
fn mulx_wide(x: u64) -> u64 {
    ((x & !MSB) << 1) ^ (((x & MSB) >> 7) * POLY_LOW)
}

/// Multiplies every byte lane of `N` independent words by the constant
/// `c`.
///
/// The ladder always runs all eight rungs: `wrapping_neg` turns each
/// bit of `c` into an all-ones or all-zeros mask, so selection is pure
/// data flow — no data-dependent branch for the predictor to miss on.
/// All `N` doubling chains step together, so the out-of-order core
/// overlaps them instead of waiting out one word's serial `mulx_wide`
/// dependency chain; the bulk routines below run `N = 2`.
#[inline]
fn mul_words<const N: usize>(mut x: [u64; N], c: u8) -> [u64; N] {
    let mut acc = [0u64; N];
    let mut bits = c;
    for _ in 0..8 {
        let keep = u64::from(bits & 1).wrapping_neg();
        for i in 0..N {
            acc[i] ^= x[i] & keep;
            x[i] = mulx_wide(x[i]);
        }
        bits >>= 1;
    }
    acc
}

/// `dst[i] ^= c · src[i]`, sixteen bytes per step.
pub(super) fn mul_add(c: u8, src: &[u8], dst: &mut [u8]) {
    let mut d_iter = dst.chunks_exact_mut(16);
    let mut s_iter = src.chunks_exact(16);
    for (d, s) in (&mut d_iter).zip(&mut s_iter) {
        let x0 = u64::from_ne_bytes(s[..8].try_into().unwrap());
        let x1 = u64::from_ne_bytes(s[8..].try_into().unwrap());
        let d0 = u64::from_ne_bytes(d[..8].try_into().unwrap());
        let d1 = u64::from_ne_bytes(d[8..].try_into().unwrap());
        let [m0, m1] = mul_words([x0, x1], c);
        d[..8].copy_from_slice(&(d0 ^ m0).to_ne_bytes());
        d[8..].copy_from_slice(&(d1 ^ m1).to_ne_bytes());
    }
    let row = &MUL_TABLE[c as usize];
    for (d, s) in d_iter.into_remainder().iter_mut().zip(s_iter.remainder()) {
        *d ^= row[*s as usize];
    }
}

/// `dst[i] = c · src[i]`, sixteen bytes per step.
pub(super) fn mul(c: u8, src: &[u8], dst: &mut [u8]) {
    let mut d_iter = dst.chunks_exact_mut(16);
    let mut s_iter = src.chunks_exact(16);
    for (d, s) in (&mut d_iter).zip(&mut s_iter) {
        let x0 = u64::from_ne_bytes(s[..8].try_into().unwrap());
        let x1 = u64::from_ne_bytes(s[8..].try_into().unwrap());
        let [m0, m1] = mul_words([x0, x1], c);
        d[..8].copy_from_slice(&m0.to_ne_bytes());
        d[8..].copy_from_slice(&m1.to_ne_bytes());
    }
    let row = &MUL_TABLE[c as usize];
    for (d, s) in d_iter.into_remainder().iter_mut().zip(s_iter.remainder()) {
        *d = row[*s as usize];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mulx_wide_matches_table_per_lane() {
        for s in 0..=255u8 {
            let word = u64::from_ne_bytes([s, s ^ 0xA5, 0, 1, 0x80, 0x7F, s, 0xFF]);
            let doubled = mulx_wide(word);
            for (lane, byte) in word.to_ne_bytes().into_iter().enumerate() {
                assert_eq!(
                    doubled.to_ne_bytes()[lane],
                    MUL_TABLE[2][byte as usize],
                    "lane {lane} of 2·{byte}"
                );
            }
        }
    }

    #[test]
    fn mul_words_matches_table_for_all_coefficients() {
        let word = u64::from_ne_bytes([0, 1, 2, 0x53, 0x80, 0xAA, 0xFE, 0xFF]);
        for c in 0..=255u8 {
            let [got] = mul_words([word], c);
            for (lane, byte) in word.to_ne_bytes().into_iter().enumerate() {
                assert_eq!(
                    got.to_ne_bytes()[lane],
                    MUL_TABLE[c as usize][byte as usize],
                    "c={c} lane={lane}"
                );
            }
        }
    }

    #[test]
    fn mul_words_lanes_are_independent() {
        let a = u64::from_ne_bytes([0, 1, 2, 0x53, 0x80, 0xAA, 0xFE, 0xFF]);
        let b = a.rotate_left(13) ^ 0xDEAD_BEEF;
        for c in 0..=255u8 {
            let [wa] = mul_words([a], c);
            let [wb] = mul_words([b], c);
            assert_eq!(mul_words([a, b], c), [wa, wb], "c={c}");
        }
    }

    #[test]
    fn sliced_paths_match_table_on_ragged_lengths() {
        // Lengths straddling the 16-byte fast path and its remainder.
        for len in [0usize, 1, 7, 15, 16, 17, 31, 48, 61] {
            let src: Vec<u8> = (0..len).map(|i| (i * 37 + 11) as u8).collect();
            for c in [0u8, 1, 2, 0x53, 0xFF] {
                let row = &MUL_TABLE[c as usize];
                let mut dst: Vec<u8> = (0..len).map(|i| (i * 5) as u8).collect();
                let want_add: Vec<u8> = dst
                    .iter()
                    .zip(&src)
                    .map(|(&d, &s)| d ^ row[s as usize])
                    .collect();
                mul_add(c, &src, &mut dst);
                assert_eq!(dst, want_add, "mul_add c={c} len={len}");

                let mut out = vec![0xEEu8; len];
                mul(c, &src, &mut out);
                let want: Vec<u8> = src.iter().map(|&s| row[s as usize]).collect();
                assert_eq!(out, want, "mul c={c} len={len}");
            }
        }
    }
}
