//! The portable SWAR backend: eight field multiplications per step using
//! plain `u64` arithmetic — no tables in the hot loop, no `unsafe`.
//!
//! A whole word of bytes is multiplied by the generator `x` at once:
//! shift every byte left within its lane, then fold the bytes that
//! overflowed back in with the reduction constant `0x1D`
//! (`PRIMITIVE_POLY` minus the `x⁸` term). Multiplication by an
//! arbitrary constant `c` is then one conditional XOR per set bit of
//! `c` — at most eight doublings per word, independent of the slice
//! length. Because the lane masks are position-based, the routine is
//! endian-agnostic.

use crate::tables::{MUL_TABLE, PRIMITIVE_POLY};

const MSB: u64 = 0x8080_8080_8080_8080;
const POLY_LOW: u64 = (PRIMITIVE_POLY & 0xFF) as u64; // 0x1D

/// Multiplies every byte lane of `x` by the field generator (value 2).
///
/// `(x & MSB) >> 7` is `0x00` or `0x01` per lane; multiplying the whole
/// word by `0x1D` scales each of those lanes to `0x00`/`0x1D` without
/// cross-lane carries (the per-lane product is at most `0x1D`).
#[inline]
fn mulx_wide(x: u64) -> u64 {
    ((x & !MSB) << 1) ^ (((x & MSB) >> 7) * POLY_LOW)
}

/// Multiplies every byte lane of `x` by the constant `c`.
#[inline]
fn mul_word(mut x: u64, c: u8) -> u64 {
    let mut acc = if c & 1 != 0 { x } else { 0 };
    let mut bits = c >> 1;
    while bits != 0 {
        x = mulx_wide(x);
        if bits & 1 != 0 {
            acc ^= x;
        }
        bits >>= 1;
    }
    acc
}

/// `dst[i] ^= c · src[i]`, eight bytes per step.
pub(super) fn mul_add(c: u8, src: &[u8], dst: &mut [u8]) {
    let mut d_iter = dst.chunks_exact_mut(8);
    let mut s_iter = src.chunks_exact(8);
    for (d, s) in (&mut d_iter).zip(&mut s_iter) {
        let x = u64::from_ne_bytes(s.try_into().unwrap());
        let dv = u64::from_ne_bytes(d.try_into().unwrap());
        d.copy_from_slice(&(dv ^ mul_word(x, c)).to_ne_bytes());
    }
    let row = &MUL_TABLE[c as usize];
    for (d, s) in d_iter.into_remainder().iter_mut().zip(s_iter.remainder()) {
        *d ^= row[*s as usize];
    }
}

/// `dst[i] = c · src[i]`, eight bytes per step.
pub(super) fn mul(c: u8, src: &[u8], dst: &mut [u8]) {
    let mut d_iter = dst.chunks_exact_mut(8);
    let mut s_iter = src.chunks_exact(8);
    for (d, s) in (&mut d_iter).zip(&mut s_iter) {
        let x = u64::from_ne_bytes(s.try_into().unwrap());
        d.copy_from_slice(&mul_word(x, c).to_ne_bytes());
    }
    let row = &MUL_TABLE[c as usize];
    for (d, s) in d_iter.into_remainder().iter_mut().zip(s_iter.remainder()) {
        *d = row[*s as usize];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mulx_wide_matches_table_per_lane() {
        for s in 0..=255u8 {
            let word = u64::from_ne_bytes([s, s ^ 0xA5, 0, 1, 0x80, 0x7F, s, 0xFF]);
            let doubled = mulx_wide(word);
            for (lane, byte) in word.to_ne_bytes().into_iter().enumerate() {
                assert_eq!(
                    doubled.to_ne_bytes()[lane],
                    MUL_TABLE[2][byte as usize],
                    "lane {lane} of 2·{byte}"
                );
            }
        }
    }

    #[test]
    fn mul_word_matches_table_for_all_coefficients() {
        let word = u64::from_ne_bytes([0, 1, 2, 0x53, 0x80, 0xAA, 0xFE, 0xFF]);
        for c in 0..=255u8 {
            let got = mul_word(word, c).to_ne_bytes();
            for (lane, byte) in word.to_ne_bytes().into_iter().enumerate() {
                assert_eq!(
                    got[lane], MUL_TABLE[c as usize][byte as usize],
                    "c={c} lane={lane}"
                );
            }
        }
    }
}
