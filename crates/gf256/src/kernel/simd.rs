//! The `std::arch` shuffle backend: nibble-split table lookups done
//! 16 (SSSE3/NEON) or 32 (AVX2) bytes per step.
//!
//! Technique (the same one ISA-L uses): a product `c·s` factors as
//! `c·(s & 0x0F) ^ c·(s >> 4 << 4)`. Each half has only 16 possible
//! values, so the two 16-byte rows `MUL_LO_NIBBLE[c]` / `MUL_HI_NIBBLE[c]`
//! are loaded into vector registers once per slice call, and every data
//! byte is resolved with two in-register shuffles (`pshufb` / `vtbl`) —
//! no memory lookups in the loop at all.
//!
//! # Safety
//!
//! This is the only `unsafe` code in the crate, and it is bounded by
//! three invariants:
//!
//! 1. **Feature gating** — every `#[target_feature]` function is reached
//!    only through the safe wrappers below, which consult the
//!    process-wide feature probe (`is_x86_feature_detected!` / NEON,
//!    cached in a `OnceLock`). The instructions executed are therefore
//!    always supported by the running CPU.
//! 2. **In-bounds pointers** — the wrappers pass equal-length slices
//!    (asserted by the dispatch layer), and each intrinsic loop touches
//!    only `i < n` where `n = len - len % STRIDE` is computed from the
//!    slice length; the `[n..]` tail is handled by the safe scalar
//!    backend. All loads/stores are the unaligned (`loadu`/`storeu` /
//!    `vld1q`/`vst1q`) variants, so sub-slice alignment is irrelevant.
//! 3. **No aliasing** — `src` and `dst` are `&[u8]` / `&mut [u8]` of the
//!    same call, so Rust's borrow rules already guarantee they do not
//!    overlap.

#[cfg(target_arch = "x86_64")]
mod imp {
    use crate::tables::{MUL_HI_NIBBLE, MUL_LO_NIBBLE};
    use core::arch::x86_64::*;
    use std::sync::OnceLock;

    #[derive(Debug, Clone, Copy)]
    enum Level {
        Avx2,
        Ssse3,
    }

    fn level() -> Option<Level> {
        static LEVEL: OnceLock<Option<Level>> = OnceLock::new();
        *LEVEL.get_or_init(|| {
            if std::arch::is_x86_feature_detected!("avx2") {
                Some(Level::Avx2)
            } else if std::arch::is_x86_feature_detected!("ssse3") {
                Some(Level::Ssse3)
            } else {
                None
            }
        })
    }

    pub(in crate::kernel) fn supported() -> bool {
        level().is_some()
    }

    pub(in crate::kernel) fn mul_add(c: u8, src: &[u8], dst: &mut [u8]) {
        // SAFETY: `level()` proved the matching CPU feature is present;
        // slice lengths are equal (asserted by the dispatch layer).
        let done = match level().expect("simd kernel backend unavailable on this CPU") {
            Level::Avx2 => unsafe { mul_add_avx2(c, src, dst) },
            Level::Ssse3 => unsafe { mul_add_ssse3(c, src, dst) },
        };
        crate::kernel::scalar::mul_add(c, &src[done..], &mut dst[done..]);
    }

    pub(in crate::kernel) fn mul(c: u8, src: &[u8], dst: &mut [u8]) {
        // SAFETY: as in `mul_add`.
        let done = match level().expect("simd kernel backend unavailable on this CPU") {
            Level::Avx2 => unsafe { mul_avx2(c, src, dst) },
            Level::Ssse3 => unsafe { mul_ssse3(c, src, dst) },
        };
        crate::kernel::scalar::mul(c, &src[done..], &mut dst[done..]);
    }

    /// Returns the number of prefix bytes processed (a multiple of 32).
    ///
    /// # Safety
    ///
    /// Requires AVX2 and `src.len() == dst.len()`.
    #[target_feature(enable = "avx2")]
    unsafe fn mul_add_avx2(c: u8, src: &[u8], dst: &mut [u8]) -> usize {
        let lo =
            _mm256_broadcastsi128_si256(_mm_loadu_si128(MUL_LO_NIBBLE[c as usize].as_ptr().cast()));
        let hi =
            _mm256_broadcastsi128_si256(_mm_loadu_si128(MUL_HI_NIBBLE[c as usize].as_ptr().cast()));
        let mask = _mm256_set1_epi8(0x0F);
        let n = src.len() & !31;
        let (sp, dp) = (src.as_ptr(), dst.as_mut_ptr());
        let mut i = 0;
        while i < n {
            let s = _mm256_loadu_si256(sp.add(i).cast());
            let l = _mm256_shuffle_epi8(lo, _mm256_and_si256(s, mask));
            let h = _mm256_shuffle_epi8(hi, _mm256_and_si256(_mm256_srli_epi64(s, 4), mask));
            let p = _mm256_xor_si256(l, h);
            let d = _mm256_loadu_si256(dp.add(i).cast());
            _mm256_storeu_si256(dp.add(i).cast(), _mm256_xor_si256(d, p));
            i += 32;
        }
        n
    }

    /// Returns the number of prefix bytes processed (a multiple of 32).
    ///
    /// # Safety
    ///
    /// Requires AVX2 and `src.len() == dst.len()`.
    #[target_feature(enable = "avx2")]
    unsafe fn mul_avx2(c: u8, src: &[u8], dst: &mut [u8]) -> usize {
        let lo =
            _mm256_broadcastsi128_si256(_mm_loadu_si128(MUL_LO_NIBBLE[c as usize].as_ptr().cast()));
        let hi =
            _mm256_broadcastsi128_si256(_mm_loadu_si128(MUL_HI_NIBBLE[c as usize].as_ptr().cast()));
        let mask = _mm256_set1_epi8(0x0F);
        let n = src.len() & !31;
        let (sp, dp) = (src.as_ptr(), dst.as_mut_ptr());
        let mut i = 0;
        while i < n {
            let s = _mm256_loadu_si256(sp.add(i).cast());
            let l = _mm256_shuffle_epi8(lo, _mm256_and_si256(s, mask));
            let h = _mm256_shuffle_epi8(hi, _mm256_and_si256(_mm256_srli_epi64(s, 4), mask));
            _mm256_storeu_si256(dp.add(i).cast(), _mm256_xor_si256(l, h));
            i += 32;
        }
        n
    }

    /// Returns the number of prefix bytes processed (a multiple of 16).
    ///
    /// # Safety
    ///
    /// Requires SSSE3 and `src.len() == dst.len()`.
    #[target_feature(enable = "ssse3")]
    unsafe fn mul_add_ssse3(c: u8, src: &[u8], dst: &mut [u8]) -> usize {
        let lo = _mm_loadu_si128(MUL_LO_NIBBLE[c as usize].as_ptr().cast());
        let hi = _mm_loadu_si128(MUL_HI_NIBBLE[c as usize].as_ptr().cast());
        let mask = _mm_set1_epi8(0x0F);
        let n = src.len() & !15;
        let (sp, dp) = (src.as_ptr(), dst.as_mut_ptr());
        let mut i = 0;
        while i < n {
            let s = _mm_loadu_si128(sp.add(i).cast());
            let l = _mm_shuffle_epi8(lo, _mm_and_si128(s, mask));
            let h = _mm_shuffle_epi8(hi, _mm_and_si128(_mm_srli_epi64(s, 4), mask));
            let p = _mm_xor_si128(l, h);
            let d = _mm_loadu_si128(dp.add(i).cast());
            _mm_storeu_si128(dp.add(i).cast(), _mm_xor_si128(d, p));
            i += 16;
        }
        n
    }

    /// Returns the number of prefix bytes processed (a multiple of 16).
    ///
    /// # Safety
    ///
    /// Requires SSSE3 and `src.len() == dst.len()`.
    #[target_feature(enable = "ssse3")]
    unsafe fn mul_ssse3(c: u8, src: &[u8], dst: &mut [u8]) -> usize {
        let lo = _mm_loadu_si128(MUL_LO_NIBBLE[c as usize].as_ptr().cast());
        let hi = _mm_loadu_si128(MUL_HI_NIBBLE[c as usize].as_ptr().cast());
        let mask = _mm_set1_epi8(0x0F);
        let n = src.len() & !15;
        let (sp, dp) = (src.as_ptr(), dst.as_mut_ptr());
        let mut i = 0;
        while i < n {
            let s = _mm_loadu_si128(sp.add(i).cast());
            let l = _mm_shuffle_epi8(lo, _mm_and_si128(s, mask));
            let h = _mm_shuffle_epi8(hi, _mm_and_si128(_mm_srli_epi64(s, 4), mask));
            _mm_storeu_si128(dp.add(i).cast(), _mm_xor_si128(l, h));
            i += 16;
        }
        n
    }
}

#[cfg(target_arch = "aarch64")]
mod imp {
    use crate::tables::{MUL_HI_NIBBLE, MUL_LO_NIBBLE};
    use core::arch::aarch64::*;

    pub(in crate::kernel) fn supported() -> bool {
        std::arch::is_aarch64_feature_detected!("neon")
    }

    pub(in crate::kernel) fn mul_add(c: u8, src: &[u8], dst: &mut [u8]) {
        assert!(supported(), "simd kernel backend unavailable on this CPU");
        // SAFETY: NEON presence checked above; slice lengths are equal
        // (asserted by the dispatch layer).
        let done = unsafe { mul_add_neon(c, src, dst) };
        crate::kernel::scalar::mul_add(c, &src[done..], &mut dst[done..]);
    }

    pub(in crate::kernel) fn mul(c: u8, src: &[u8], dst: &mut [u8]) {
        assert!(supported(), "simd kernel backend unavailable on this CPU");
        // SAFETY: as in `mul_add`.
        let done = unsafe { mul_neon(c, src, dst) };
        crate::kernel::scalar::mul(c, &src[done..], &mut dst[done..]);
    }

    /// Returns the number of prefix bytes processed (a multiple of 16).
    ///
    /// # Safety
    ///
    /// Requires NEON and `src.len() == dst.len()`.
    #[target_feature(enable = "neon")]
    unsafe fn mul_add_neon(c: u8, src: &[u8], dst: &mut [u8]) -> usize {
        let lo = vld1q_u8(MUL_LO_NIBBLE[c as usize].as_ptr());
        let hi = vld1q_u8(MUL_HI_NIBBLE[c as usize].as_ptr());
        let mask = vdupq_n_u8(0x0F);
        let n = src.len() & !15;
        let (sp, dp) = (src.as_ptr(), dst.as_mut_ptr());
        let mut i = 0;
        while i < n {
            let s = vld1q_u8(sp.add(i));
            let l = vqtbl1q_u8(lo, vandq_u8(s, mask));
            let h = vqtbl1q_u8(hi, vshrq_n_u8::<4>(s));
            let p = veorq_u8(l, h);
            let d = vld1q_u8(dp.add(i));
            vst1q_u8(dp.add(i), veorq_u8(d, p));
            i += 16;
        }
        n
    }

    /// Returns the number of prefix bytes processed (a multiple of 16).
    ///
    /// # Safety
    ///
    /// Requires NEON and `src.len() == dst.len()`.
    #[target_feature(enable = "neon")]
    unsafe fn mul_neon(c: u8, src: &[u8], dst: &mut [u8]) -> usize {
        let lo = vld1q_u8(MUL_LO_NIBBLE[c as usize].as_ptr());
        let hi = vld1q_u8(MUL_HI_NIBBLE[c as usize].as_ptr());
        let mask = vdupq_n_u8(0x0F);
        let n = src.len() & !15;
        let (sp, dp) = (src.as_ptr(), dst.as_mut_ptr());
        let mut i = 0;
        while i < n {
            let s = vld1q_u8(sp.add(i));
            let l = vqtbl1q_u8(lo, vandq_u8(s, mask));
            let h = vqtbl1q_u8(hi, vshrq_n_u8::<4>(s));
            vst1q_u8(dp.add(i), veorq_u8(l, h));
            i += 16;
        }
        n
    }
}

pub(super) use imp::{mul, mul_add, supported};
