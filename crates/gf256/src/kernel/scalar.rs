//! The portable reference backend: one lookup per byte into the full
//! 64 KiB product table, unrolled by four.
//!
//! This is byte-for-byte the behaviour the original `slice` kernels had;
//! the differential suite pins the SWAR and SIMD backends against it.

use crate::tables::MUL_TABLE;

/// `dst[i] ^= c · src[i]`, one table lookup per byte.
pub(super) fn mul_add(c: u8, src: &[u8], dst: &mut [u8]) {
    let row = &MUL_TABLE[c as usize];
    let mut d_iter = dst.chunks_exact_mut(4);
    let mut s_iter = src.chunks_exact(4);
    for (d, s) in (&mut d_iter).zip(&mut s_iter) {
        d[0] ^= row[s[0] as usize];
        d[1] ^= row[s[1] as usize];
        d[2] ^= row[s[2] as usize];
        d[3] ^= row[s[3] as usize];
    }
    for (d, s) in d_iter.into_remainder().iter_mut().zip(s_iter.remainder()) {
        *d ^= row[*s as usize];
    }
}

/// `dst[i] = c · src[i]`, one table lookup per byte.
pub(super) fn mul(c: u8, src: &[u8], dst: &mut [u8]) {
    let row = &MUL_TABLE[c as usize];
    for (d, s) in dst.iter_mut().zip(src) {
        *d = row[*s as usize];
    }
}
