//! Runtime-dispatched bulk GF(2⁸) kernels — the workspace's stand-in for
//! Intel ISA-L's SIMD erasure-coding primitives (paper §VI).
//!
//! Three interchangeable backends implement the same two primitives
//! (`dst = c·src` and `dst ^= c·src`):
//!
//! | backend | technique | bytes/step |
//! |---|---|---|
//! | [`Backend::Scalar`] | byte lookups into the full 64 KiB product table | 1 |
//! | [`Backend::Swar`] | carry-less doubling over `u64` words, one conditional XOR per set bit of `c` | 8 |
//! | [`Backend::Simd`] | nibble-split table shuffles (`pshufb` on SSSE3/AVX2, `vtbl` on NEON) | 16–32 |
//!
//! The backend is chosen **once per process**: the first kernel call (or
//! call to [`active`]) reads `GALLOPER_KERNEL=scalar|swar|simd`, falls
//! back to a sub-millisecond in-process probe ([`probe_backends`]) that
//! times every CPU-supported backend and keeps the fastest — never one
//! measuring slower than the scalar reference — and publishes the
//! decision as the `galloper_obs` gauge `gf.kernel.backend` (the
//! backend's discriminant) so every metrics snapshot and `BENCH_*.json`
//! records which kernel produced it.
//! An unavailable or misspelled override warns on stderr and falls back
//! to auto-detection rather than aborting.
//!
//! Functions here are **uncounted**: they do not touch the `gf.*` byte
//! counters. The counted public API stays in [`crate::slice`]; batch
//! drivers (`galloper_linalg::apply`) call these raw entry points and
//! record the identical byte totals once per matrix application instead
//! of once per row×coefficient (see [`crate::slice::record_mac_bytes`]).

use std::sync::OnceLock;

mod scalar;
mod swar;

#[cfg(any(target_arch = "x86_64", target_arch = "aarch64"))]
#[allow(unsafe_code)]
mod simd;

/// One of the three interchangeable kernel implementations.
///
/// Discriminant values are stable (0 = scalar, 1 = swar, 2 = simd) and
/// are what the `gf.kernel.backend` gauge reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(i64)]
pub enum Backend {
    /// Portable reference: one 64 KiB-table lookup per byte.
    Scalar = 0,
    /// Portable SWAR: eight bytes per step via `u64` shift/mask algebra.
    Swar = 1,
    /// `std::arch` shuffle kernels over the nibble-split tables.
    Simd = 2,
}

/// Every backend, in preference order for exhaustive sweeps.
pub const ALL_BACKENDS: [Backend; 3] = [Backend::Scalar, Backend::Swar, Backend::Simd];

impl Backend {
    /// The backend's stable lower-case name (`"scalar"`, `"swar"`,
    /// `"simd"`) — the same spelling `GALLOPER_KERNEL` accepts.
    pub fn name(self) -> &'static str {
        match self {
            Backend::Scalar => "scalar",
            Backend::Swar => "swar",
            Backend::Simd => "simd",
        }
    }

    /// Parses a `GALLOPER_KERNEL` value (case-insensitive).
    pub fn from_name(name: &str) -> Option<Backend> {
        match name.trim().to_ascii_lowercase().as_str() {
            "scalar" => Some(Backend::Scalar),
            "swar" => Some(Backend::Swar),
            "simd" => Some(Backend::Simd),
            _ => None,
        }
    }

    /// Whether this backend can run on the current CPU. `Scalar` and
    /// `Swar` always can; `Simd` requires SSSE3 (x86-64) or NEON
    /// (aarch64).
    pub fn is_available(self) -> bool {
        match self {
            Backend::Scalar | Backend::Swar => true,
            #[cfg(any(target_arch = "x86_64", target_arch = "aarch64"))]
            Backend::Simd => simd::supported(),
            #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
            Backend::Simd => false,
        }
    }
}

impl std::fmt::Display for Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The backends runnable on this CPU, always starting with `Scalar`
/// (the reference the differential tests pin everything else against).
pub fn available_backends() -> Vec<Backend> {
    ALL_BACKENDS
        .into_iter()
        .filter(|b| b.is_available())
        .collect()
}

/// The process-wide active backend, resolved once on first use.
///
/// Resolution order: a valid and available `GALLOPER_KERNEL` override;
/// otherwise a one-shot in-process probe ([`probe_backends`]) that times
/// every available backend on a cache-sized `mul_add` and keeps the
/// fastest — with the scalar reference as the floor, so auto-detection
/// can never select a backend that measures slower than scalar on this
/// machine (the guarantee that retired the old static preference list
/// after SWAR benched at 0.37× scalar). The choice is published as the
/// `gf.kernel.backend` gauge.
pub fn active() -> Backend {
    static ACTIVE: OnceLock<Backend> = OnceLock::new();
    *ACTIVE.get_or_init(|| {
        let backend = resolve();
        galloper_obs::global()
            .gauge("gf.kernel.backend")
            .set(backend as i64);
        backend
    })
}

fn resolve() -> Backend {
    match std::env::var("GALLOPER_KERNEL") {
        Ok(raw) => match Backend::from_name(&raw) {
            Some(b) if b.is_available() => b,
            Some(b) => {
                let auto = auto_detect();
                eprintln!(
                    "warning: GALLOPER_KERNEL={} is not supported on this CPU; using {auto}",
                    b.name()
                );
                auto
            }
            None => {
                let auto = auto_detect();
                eprintln!(
                    "warning: GALLOPER_KERNEL={raw:?} is not one of scalar|swar|simd; using {auto}"
                );
                auto
            }
        },
        Err(_) => auto_detect(),
    }
}

/// Bytes each probe multiplies per rep: big enough that dispatch and
/// timer overhead vanish, small enough (¼ of a typical L2) that the
/// probe finishes in well under a millisecond per backend.
const PROBE_LEN: usize = 64 * 1024;
/// Timed reps per backend; the minimum over reps is compared, so a
/// single scheduler preemption cannot mis-rank a backend.
const PROBE_REPS: usize = 5;

/// Times one `mul_add` sweep over [`PROBE_LEN`] bytes on `backend`,
/// returning the best of [`PROBE_REPS`] timed reps (after one warm-up
/// rep that faults in the buffers and the backend's tables).
fn probe(backend: Backend, src: &[u8], dst: &mut [u8]) -> std::time::Duration {
    // Three coefficients with different popcounts, so backends whose
    // cost depends on the bit pattern of `c` (SWAR's ladder) are ranked
    // on a representative mix.
    const COEFFS: [u8; 3] = [0x02, 0x53, 0xFE];
    let mut best = std::time::Duration::MAX;
    for rep in 0..=PROBE_REPS {
        let start = std::time::Instant::now();
        for c in COEFFS {
            dispatch_mul_add(backend, c, src, dst);
        }
        let elapsed = start.elapsed();
        if rep > 0 && elapsed < best {
            best = elapsed;
        }
    }
    best
}

/// Times every [available](Backend::is_available) backend and returns
/// `(backend, best_rep_time)` pairs, scalar first.
pub fn probe_backends() -> Vec<(Backend, std::time::Duration)> {
    let src: Vec<u8> = (0..PROBE_LEN).map(|i| (i * 131 + 7) as u8).collect();
    let mut dst = vec![0u8; PROBE_LEN];
    available_backends()
        .into_iter()
        .map(|b| (b, probe(b, &src, &mut dst)))
        .collect()
}

fn auto_detect() -> Backend {
    // Under miri, wall-clock ranking is meaningless and the probe would
    // take minutes of interpretation; the scalar reference is the
    // correct (and only differentially-pinned) choice.
    if cfg!(miri) {
        return Backend::Scalar;
    }
    let timings = probe_backends();
    let scalar = timings
        .iter()
        .find(|(b, _)| *b == Backend::Scalar)
        .map(|&(_, t)| t)
        .unwrap_or(std::time::Duration::MAX);
    timings
        .into_iter()
        // The scalar floor: a backend must measure at least as fast as
        // scalar here and now, or it is not eligible — no static
        // preference can reinstate a locally-slow backend.
        .filter(|&(b, t)| b == Backend::Scalar || t <= scalar)
        .min_by_key(|&(_, t)| t)
        .map(|(b, _)| b)
        .unwrap_or(Backend::Scalar)
}

/// `dst[i] ^= c · src[i]` — the fused multiply-accumulate, dispatched to
/// the [`active`] backend. Coefficients `0` (no-op) and `1` ([`xor`])
/// take backend-independent fast paths.
///
/// # Panics
///
/// Panics if `src` and `dst` have different lengths.
#[inline]
pub fn mul_add(c: u8, src: &[u8], dst: &mut [u8]) {
    assert_eq!(src.len(), dst.len(), "mul_add length mismatch");
    match c {
        0 => {}
        1 => xor(src, dst),
        _ => dispatch_mul_add(active(), c, src, dst),
    }
}

/// `dst[i] = c · src[i]`, dispatched to the [`active`] backend. `0`
/// zero-fills, `1` copies.
///
/// # Panics
///
/// Panics if `src` and `dst` have different lengths.
#[inline]
pub fn mul(c: u8, src: &[u8], dst: &mut [u8]) {
    assert_eq!(src.len(), dst.len(), "mul length mismatch");
    match c {
        0 => dst.fill(0),
        1 => dst.copy_from_slice(src),
        _ => dispatch_mul(active(), c, src, dst),
    }
}

/// `dst[i] ^= src[i]`, eight bytes per step. XOR needs no multiply
/// table, so every backend shares this `u64` implementation.
///
/// # Panics
///
/// Panics if `src` and `dst` have different lengths.
pub fn xor(src: &[u8], dst: &mut [u8]) {
    assert_eq!(src.len(), dst.len(), "xor length mismatch");
    let mut dchunks = dst.chunks_exact_mut(8);
    let mut schunks = src.chunks_exact(8);
    for (d, s) in (&mut dchunks).zip(&mut schunks) {
        let dv = u64::from_ne_bytes(d.try_into().unwrap());
        let sv = u64::from_ne_bytes(s.try_into().unwrap());
        d.copy_from_slice(&(dv ^ sv).to_ne_bytes());
    }
    for (d, s) in dchunks.into_remainder().iter_mut().zip(schunks.remainder()) {
        *d ^= *s;
    }
}

/// `dst = Σ coeffs[j] · sources[j]` — one output stripe of a matrix–data
/// product, fully overwriting `dst`. This is the shared entry point that
/// [`crate::slice::dot_product`] and `galloper_linalg::apply` both
/// deduplicate onto.
///
/// # Panics
///
/// Panics if `coeffs` and `sources` have different lengths, or any
/// source length differs from `dst`.
pub fn dot_into(coeffs: &[u8], sources: &[&[u8]], dst: &mut [u8]) {
    assert_eq!(
        coeffs.len(),
        sources.len(),
        "dot_into arity mismatch: {} coefficients vs {} sources",
        coeffs.len(),
        sources.len()
    );
    dst.fill(0);
    for (&c, src) in coeffs.iter().zip(sources) {
        mul_add(c, src, dst);
    }
}

/// [`mul_add`] forced onto `backend`'s general path (no `0`/`1` fast
/// paths), so differential tests exercise every backend over all 256
/// coefficients.
///
/// # Panics
///
/// Panics on length mismatch or if `backend` is not
/// [available](Backend::is_available) on this CPU.
pub fn mul_add_with(backend: Backend, c: u8, src: &[u8], dst: &mut [u8]) {
    assert_eq!(src.len(), dst.len(), "mul_add length mismatch");
    dispatch_mul_add(backend, c, src, dst);
}

/// [`mul`] forced onto `backend`'s general path. See [`mul_add_with`].
///
/// # Panics
///
/// Panics on length mismatch or if `backend` is not
/// [available](Backend::is_available) on this CPU.
pub fn mul_with(backend: Backend, c: u8, src: &[u8], dst: &mut [u8]) {
    assert_eq!(src.len(), dst.len(), "mul length mismatch");
    dispatch_mul(backend, c, src, dst);
}

fn dispatch_mul_add(backend: Backend, c: u8, src: &[u8], dst: &mut [u8]) {
    match backend {
        Backend::Scalar => scalar::mul_add(c, src, dst),
        Backend::Swar => swar::mul_add(c, src, dst),
        Backend::Simd => simd_mul_add(c, src, dst),
    }
}

fn dispatch_mul(backend: Backend, c: u8, src: &[u8], dst: &mut [u8]) {
    match backend {
        Backend::Scalar => scalar::mul(c, src, dst),
        Backend::Swar => swar::mul(c, src, dst),
        Backend::Simd => simd_mul(c, src, dst),
    }
}

#[cfg(any(target_arch = "x86_64", target_arch = "aarch64"))]
use simd::{mul as simd_mul, mul_add as simd_mul_add};

#[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
fn simd_mul_add(_c: u8, _src: &[u8], _dst: &mut [u8]) {
    panic!("simd kernel backend is not available on this architecture");
}

#[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
fn simd_mul(_c: u8, _src: &[u8], _dst: &mut [u8]) {
    panic!("simd kernel backend is not available on this architecture");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backend_names_roundtrip() {
        for b in ALL_BACKENDS {
            assert_eq!(Backend::from_name(b.name()), Some(b));
            assert_eq!(Backend::from_name(&b.name().to_uppercase()), Some(b));
        }
        assert_eq!(Backend::from_name(" swar "), Some(Backend::Swar));
        assert_eq!(Backend::from_name("avx2"), None);
    }

    #[test]
    fn scalar_and_swar_are_always_available() {
        let avail = available_backends();
        assert!(avail.contains(&Backend::Scalar));
        assert!(avail.contains(&Backend::Swar));
        assert_eq!(avail.first(), Some(&Backend::Scalar));
    }

    #[test]
    fn active_backend_is_available_and_sets_gauge() {
        let b = active();
        assert!(b.is_available());
        assert_eq!(
            galloper_obs::global().gauge("gf.kernel.backend").get(),
            b as i64
        );
    }

    /// The auto-detection contract: whatever backend the probe selects
    /// must not measure slower than scalar when re-probed. Re-probing
    /// uses fresh min-of-reps timings, so a generous slack absorbs
    /// run-to-run noise without ever letting a 0.37×-scalar backend
    /// (the original SWAR regression) through.
    #[test]
    #[cfg_attr(miri, ignore = "wall-clock probing is meaningless under miri")]
    fn auto_detected_backend_is_not_slower_than_scalar() {
        if std::env::var_os("GALLOPER_KERNEL").is_some() {
            return; // explicit override voids the auto-detect contract
        }
        let chosen = auto_detect();
        if chosen == Backend::Scalar {
            return; // the floor itself is trivially eligible
        }
        let timings = probe_backends();
        let time_of = |want: Backend| {
            timings
                .iter()
                .find(|(b, _)| *b == want)
                .map(|&(_, t)| t)
                .expect("probed backend present")
        };
        let scalar = time_of(Backend::Scalar);
        let picked = time_of(chosen);
        assert!(
            picked <= scalar.saturating_mul(3) / 2,
            "auto-detected {chosen} re-probed at {picked:?} vs scalar {scalar:?}"
        );
    }

    #[test]
    fn dot_into_matches_slice_reference() {
        let a: Vec<u8> = (0..100).map(|i| (i * 3) as u8).collect();
        let b: Vec<u8> = (0..100).map(|i| (i * 5 + 1) as u8).collect();
        let mut dst = vec![0xEEu8; 100];
        dot_into(&[2, 0x53], &[&a, &b], &mut dst);
        let mut want = vec![0u8; 100];
        crate::slice::dot_product(&[2, 0x53], &[&a, &b], &mut want);
        assert_eq!(dst, want);
    }
}
