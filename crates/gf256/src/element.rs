//! The typed field element [`Gf256`].

// In characteristic 2, addition IS xor and a/b IS a·b⁻¹; clippy's
// "suspicious operator in arithmetic impl" heuristic does not apply.
#![allow(clippy::suspicious_arithmetic_impl, clippy::suspicious_op_assign_impl)]

use core::fmt;
use core::iter::{Product, Sum};
use core::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

use crate::tables::{EXP_TABLE, LOG_TABLE, MUL_TABLE};

/// An element of GF(2⁸).
///
/// `Gf256` is a transparent wrapper over `u8` with field arithmetic as
/// operator overloads. Because the field has characteristic 2, addition and
/// subtraction are the same operation (XOR) and every element is its own
/// additive inverse.
///
/// # Examples
///
/// ```
/// use galloper_gf::Gf256;
///
/// let a = Gf256::new(7);
/// assert_eq!(a + a, Gf256::ZERO);          // characteristic 2
/// assert_eq!(a - a, a + a);                // sub == add
/// assert_eq!(a.pow(255), Gf256::ONE);      // Fermat: a^(q-1) = 1
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[repr(transparent)]
pub struct Gf256(u8);

impl Gf256 {
    /// The additive identity.
    pub const ZERO: Gf256 = Gf256(0);
    /// The multiplicative identity.
    pub const ONE: Gf256 = Gf256(1);
    /// The canonical generator of the multiplicative group (the polynomial
    /// `x`, value 2).
    pub const GENERATOR: Gf256 = Gf256(2);

    /// Wraps a byte as a field element.
    ///
    /// Every byte value is a valid element, so this is total.
    #[inline]
    pub const fn new(value: u8) -> Self {
        Gf256(value)
    }

    /// Returns the underlying byte.
    #[inline]
    pub const fn value(self) -> u8 {
        self.0
    }

    /// Whether this is the additive identity.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// `α^i` where `α` is [`Gf256::GENERATOR`]; `i` is reduced mod 255.
    #[inline]
    pub fn exp(i: usize) -> Self {
        Gf256(EXP_TABLE[i % 255])
    }

    /// Discrete logarithm base `α`, or `None` for zero (which has no log).
    #[inline]
    pub fn log(self) -> Option<u8> {
        if self.0 == 0 {
            None
        } else {
            Some(LOG_TABLE[self.0 as usize])
        }
    }

    /// Multiplicative inverse, or `None` for zero.
    ///
    /// # Examples
    ///
    /// ```
    /// use galloper_gf::Gf256;
    /// assert_eq!(Gf256::ZERO.inv(), None);
    /// let a = Gf256::new(0xB7);
    /// assert_eq!((a * a.inv().unwrap()), Gf256::ONE);
    /// ```
    #[inline]
    pub fn inv(self) -> Option<Self> {
        if self.0 == 0 {
            None
        } else {
            let log = LOG_TABLE[self.0 as usize] as usize;
            Some(Gf256(EXP_TABLE[255 - log]))
        }
    }

    /// Raises the element to an arbitrary power.
    ///
    /// `pow(0)` is `ONE` for every base, including zero (the empty-product
    /// convention, matching `u32::pow`).
    pub fn pow(self, mut e: u32) -> Self {
        if e == 0 {
            return Gf256::ONE;
        }
        if self.0 == 0 {
            return Gf256::ZERO;
        }
        let log = LOG_TABLE[self.0 as usize] as u64;
        e %= 255;
        Gf256(EXP_TABLE[((log * e as u64) % 255) as usize])
    }
}

impl fmt::Debug for Gf256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Gf256({:#04x})", self.0)
    }
}

impl fmt::Display for Gf256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:02x}", self.0)
    }
}

impl fmt::LowerHex for Gf256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl fmt::UpperHex for Gf256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::UpperHex::fmt(&self.0, f)
    }
}

impl fmt::Binary for Gf256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Binary::fmt(&self.0, f)
    }
}

impl fmt::Octal for Gf256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Octal::fmt(&self.0, f)
    }
}

impl From<u8> for Gf256 {
    #[inline]
    fn from(value: u8) -> Self {
        Gf256(value)
    }
}

impl From<Gf256> for u8 {
    #[inline]
    fn from(value: Gf256) -> Self {
        value.0
    }
}

impl Add for Gf256 {
    type Output = Gf256;
    #[inline]
    fn add(self, rhs: Gf256) -> Gf256 {
        Gf256(self.0 ^ rhs.0)
    }
}

impl AddAssign for Gf256 {
    #[inline]
    fn add_assign(&mut self, rhs: Gf256) {
        self.0 ^= rhs.0;
    }
}

impl Sub for Gf256 {
    type Output = Gf256;
    #[inline]
    fn sub(self, rhs: Gf256) -> Gf256 {
        Gf256(self.0 ^ rhs.0)
    }
}

impl SubAssign for Gf256 {
    #[inline]
    fn sub_assign(&mut self, rhs: Gf256) {
        self.0 ^= rhs.0;
    }
}

impl Neg for Gf256 {
    type Output = Gf256;
    #[inline]
    fn neg(self) -> Gf256 {
        self // characteristic 2: -a == a
    }
}

impl Mul for Gf256 {
    type Output = Gf256;
    #[inline]
    fn mul(self, rhs: Gf256) -> Gf256 {
        Gf256(MUL_TABLE[self.0 as usize][rhs.0 as usize])
    }
}

impl MulAssign for Gf256 {
    #[inline]
    fn mul_assign(&mut self, rhs: Gf256) {
        *self = *self * rhs;
    }
}

impl Div for Gf256 {
    type Output = Gf256;

    /// # Panics
    ///
    /// Panics on division by zero, mirroring integer division.
    #[inline]
    fn div(self, rhs: Gf256) -> Gf256 {
        let inv = rhs.inv().expect("division by zero in GF(256)");
        self * inv
    }
}

impl DivAssign for Gf256 {
    #[inline]
    fn div_assign(&mut self, rhs: Gf256) {
        *self = *self / rhs;
    }
}

impl Sum for Gf256 {
    fn sum<I: Iterator<Item = Gf256>>(iter: I) -> Gf256 {
        iter.fold(Gf256::ZERO, Add::add)
    }
}

impl<'a> Sum<&'a Gf256> for Gf256 {
    fn sum<I: Iterator<Item = &'a Gf256>>(iter: I) -> Gf256 {
        iter.copied().sum()
    }
}

impl Product for Gf256 {
    fn product<I: Iterator<Item = Gf256>>(iter: I) -> Gf256 {
        iter.fold(Gf256::ONE, Mul::mul)
    }
}

impl<'a> Product<&'a Gf256> for Gf256 {
    fn product<I: Iterator<Item = &'a Gf256>>(iter: I) -> Gf256 {
        iter.copied().product()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identities() {
        for v in 0..=255u8 {
            let a = Gf256::new(v);
            assert_eq!(a + Gf256::ZERO, a);
            assert_eq!(a * Gf256::ONE, a);
            assert_eq!(a * Gf256::ZERO, Gf256::ZERO);
        }
    }

    #[test]
    fn every_nonzero_element_has_inverse() {
        for v in 1..=255u8 {
            let a = Gf256::new(v);
            let inv = a.inv().expect("non-zero must be invertible");
            assert_eq!(a * inv, Gf256::ONE, "inv failed for {v}");
        }
        assert_eq!(Gf256::ZERO.inv(), None);
    }

    #[test]
    fn division_matches_inverse() {
        for a in 0..=255u8 {
            for b in 1..=255u8 {
                let (a, b) = (Gf256::new(a), Gf256::new(b));
                assert_eq!(a / b * b, a);
            }
        }
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn division_by_zero_panics() {
        let _ = Gf256::ONE / Gf256::ZERO;
    }

    #[test]
    fn pow_edge_cases() {
        assert_eq!(Gf256::ZERO.pow(0), Gf256::ONE);
        assert_eq!(Gf256::ZERO.pow(7), Gf256::ZERO);
        assert_eq!(Gf256::GENERATOR.pow(255), Gf256::ONE);
        assert_eq!(Gf256::GENERATOR.pow(256), Gf256::GENERATOR);
        // pow must agree with repeated multiplication.
        for v in [1u8, 2, 3, 0x1D, 0xFF] {
            let a = Gf256::new(v);
            let mut acc = Gf256::ONE;
            for e in 0..520u32 {
                assert_eq!(a.pow(e), acc, "pow mismatch for {v}^{e}");
                acc *= a;
            }
        }
    }

    #[test]
    fn exp_is_periodic() {
        for i in 0..255 {
            assert_eq!(Gf256::exp(i), Gf256::exp(i + 255));
        }
    }

    #[test]
    fn sum_and_product_impls() {
        let xs = [Gf256::new(3), Gf256::new(5), Gf256::new(3)];
        assert_eq!(xs.iter().sum::<Gf256>(), Gf256::new(5));
        assert_eq!(
            xs.iter().product::<Gf256>(),
            Gf256::new(3) * Gf256::new(5) * Gf256::new(3)
        );
        assert_eq!(std::iter::empty::<Gf256>().sum::<Gf256>(), Gf256::ZERO);
        assert_eq!(std::iter::empty::<Gf256>().product::<Gf256>(), Gf256::ONE);
    }

    #[test]
    fn formatting() {
        let a = Gf256::new(0x1D);
        assert_eq!(format!("{a}"), "1d");
        assert_eq!(format!("{a:?}"), "Gf256(0x1d)");
        assert_eq!(format!("{a:x}"), "1d");
        assert_eq!(format!("{a:X}"), "1D");
        assert_eq!(format!("{a:b}"), "11101");
        assert_eq!(format!("{a:o}"), "35");
    }

    #[test]
    fn conversions() {
        let a: Gf256 = 7u8.into();
        let b: u8 = a.into();
        assert_eq!(b, 7);
    }
}
