//! Bulk kernels over byte slices: the hot path of every encoder and decoder
//! in the workspace.
//!
//! These functions operate on raw `u8` slices rather than `[Gf256]` so that
//! block buffers can be used directly without transmutation. Coefficients of
//! `0` and `1` take dedicated fast paths (`0` is a no-op or fill, `1` is a
//! word-wide XOR/copy), which matters in practice: systematic generator
//! matrices are dominated by zeros and ones.
//!
//! Since the kernel rewrite, the actual byte loops live in
//! [`crate::kernel`], which dispatches to a scalar, SWAR, or SIMD backend
//! chosen once at startup (`GALLOPER_KERNEL` overrides). This module is the
//! *counted* facade over those raw kernels: every call here adds its byte
//! count to a global counter (`gf.xor_slice.bytes`, `gf.mul_slice.bytes`,
//! `gf.mul_slice_add.bytes`, `gf.dot_product.calls`) in the
//! [`galloper_obs`] registry — one relaxed atomic add per call, so the
//! kernels stay memory-bound. Batch drivers that would otherwise pay one
//! atomic add per tiny tile (`galloper_linalg::apply`) call the raw
//! kernels directly and reproduce the identical totals through
//! [`record_mac_bytes`]. Snapshot with `galloper_obs::global().snapshot()`.

use crate::kernel;

use galloper_obs::counter;

/// `dst[i] ^= src[i]` for all `i`, processing eight bytes per step.
///
/// # Panics
///
/// Panics if `src` and `dst` have different lengths.
pub fn xor_slice(src: &[u8], dst: &mut [u8]) {
    assert_eq!(src.len(), dst.len(), "xor_slice length mismatch");
    counter!("gf.xor_slice.bytes", src.len());
    kernel::xor(src, dst);
}

/// `dst[i] = c · src[i]` for all `i`.
///
/// With `c == 0` this zero-fills `dst`; with `c == 1` it is a plain copy.
///
/// # Panics
///
/// Panics if `src` and `dst` have different lengths.
pub fn mul_slice(c: u8, src: &[u8], dst: &mut [u8]) {
    assert_eq!(src.len(), dst.len(), "mul_slice length mismatch");
    counter!("gf.mul_slice.bytes", src.len());
    kernel::mul(c, src, dst);
}

/// `dst[i] ^= c · src[i]` for all `i` — the fused multiply-accumulate that
/// dominates encode and decode time.
///
/// With `c == 0` this is a no-op; with `c == 1` it degrades to [`xor_slice`].
///
/// # Panics
///
/// Panics if `src` and `dst` have different lengths.
pub fn mul_slice_add(c: u8, src: &[u8], dst: &mut [u8]) {
    assert_eq!(src.len(), dst.len(), "mul_slice_add length mismatch");
    counter!("gf.mul_slice_add.bytes", src.len());
    match c {
        0 => {}
        1 => xor_slice(src, dst),
        _ => kernel::mul_add(c, src, dst),
    }
}

/// Dot product of a coefficient row with a set of equally sized source
/// slices: `dst = Σ coeffs[j] · sources[j]`.
///
/// This is one output stripe of a matrix–data product. `dst` is fully
/// overwritten. The byte loop itself is [`kernel::dot_into`]; this
/// wrapper adds the accounting (`gf.dot_product.calls` plus the batched
/// per-coefficient byte counts via [`record_mac_bytes`]).
///
/// # Panics
///
/// Panics if `coeffs` and `sources` have different lengths, or if any source
/// length differs from `dst`.
pub fn dot_product(coeffs: &[u8], sources: &[&[u8]], dst: &mut [u8]) {
    assert_eq!(
        coeffs.len(),
        sources.len(),
        "dot_product arity mismatch: {} coefficients vs {} sources",
        coeffs.len(),
        sources.len()
    );
    counter!("gf.dot_product.calls", 1);
    let ones = coeffs.iter().filter(|&&c| c == 1).count();
    record_mac_bytes(coeffs.len(), ones, dst.len());
    kernel::dot_into(coeffs, sources, dst);
}

/// Batched twin of the per-call kernel accounting.
///
/// Adds to the global counters exactly what `coeff_count` calls of
/// [`mul_slice_add`] over `stripe_len`-byte stripes would have added:
/// `coeff_count · stripe_len` on `gf.mul_slice_add.bytes`, plus
/// `one_count · stripe_len` on `gf.xor_slice.bytes` for the coefficients
/// equal to `1` (whose per-call path delegates to [`xor_slice`], which
/// counts again). Batch drivers such as `galloper_linalg::apply` call
/// this once per matrix application and then drive the raw
/// [`crate::kernel`] entry points, so totals stay byte-identical to the
/// per-call accounting while tiny tiles stop paying one atomic add per
/// row×coefficient.
pub fn record_mac_bytes(coeff_count: usize, one_count: usize, stripe_len: usize) {
    counter!("gf.mul_slice_add.bytes", coeff_count * stripe_len);
    counter!("gf.xor_slice.bytes", one_count * stripe_len);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Gf256;

    fn reference_mul(c: u8, s: u8) -> u8 {
        (Gf256::new(c) * Gf256::new(s)).value()
    }

    #[test]
    fn xor_slice_basic() {
        let src = [0xFFu8; 19]; // odd length exercises the remainder path
        let mut dst = [0xA5u8; 19];
        xor_slice(&src, &mut dst);
        assert_eq!(dst, [0x5Au8; 19]);
    }

    #[test]
    fn mul_slice_matches_elementwise() {
        let src: Vec<u8> = (0..=255).collect();
        for c in [0u8, 1, 2, 0x1D, 0x80, 0xFF] {
            let mut dst = vec![0u8; src.len()];
            mul_slice(c, &src, &mut dst);
            for (i, (&s, &d)) in src.iter().zip(&dst).enumerate() {
                assert_eq!(d, reference_mul(c, s), "c={c} i={i}");
            }
        }
    }

    #[test]
    fn mul_slice_add_accumulates() {
        let src: Vec<u8> = (0..=254).collect(); // odd length
        for c in [0u8, 1, 3, 0xFE] {
            let mut dst: Vec<u8> = src.iter().map(|v| v.wrapping_mul(7)).collect();
            let before = dst.clone();
            mul_slice_add(c, &src, &mut dst);
            for i in 0..src.len() {
                assert_eq!(dst[i], before[i] ^ reference_mul(c, src[i]), "c={c} i={i}");
            }
        }
    }

    #[test]
    fn mul_slice_add_zero_is_noop() {
        let src = [9u8; 33];
        let mut dst = [7u8; 33];
        mul_slice_add(0, &src, &mut dst);
        assert_eq!(dst, [7u8; 33]);
    }

    #[test]
    fn dot_product_matches_manual_sum() {
        let a: Vec<u8> = (0..100).map(|i| (i * 3) as u8).collect();
        let b: Vec<u8> = (0..100).map(|i| (i * 5 + 1) as u8).collect();
        let c: Vec<u8> = (0..100).map(|i| (255 - i) as u8).collect();
        let coeffs = [2u8, 1, 0x53];
        let mut dst = vec![0xEEu8; 100]; // pre-filled garbage must be overwritten
        dot_product(&coeffs, &[&a, &b, &c], &mut dst);
        for i in 0..100 {
            let want = reference_mul(2, a[i]) ^ b[i] ^ reference_mul(0x53, c[i]);
            assert_eq!(dst[i], want, "i={i}");
        }
    }

    #[test]
    fn dot_product_empty_zeroes_dst() {
        let mut dst = [1u8; 8];
        dot_product(&[], &[], &mut dst);
        assert_eq!(dst, [0u8; 8]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let mut dst = [0u8; 3];
        mul_slice_add(2, &[1, 2, 3, 4], &mut dst);
    }
}
