//! Polynomials over GF(2⁸): the classical lens on Reed–Solomon codes.
//!
//! A `(k, r)` Reed–Solomon codeword is the evaluation of a degree-`< k`
//! polynomial at `k + r` distinct points, and decoding is Lagrange
//! interpolation from any `k` of them. The matrix-based codes in this
//! workspace are tested against this independent formulation.

use crate::Gf256;

/// A polynomial with coefficients in GF(2⁸), stored low-degree first.
///
/// The zero polynomial has no coefficients and degree `None`.
///
/// # Examples
///
/// ```
/// use galloper_gf::{Gf256, Polynomial};
///
/// // p(x) = 3 + x²
/// let p = Polynomial::new(vec![Gf256::new(3), Gf256::ZERO, Gf256::ONE]);
/// assert_eq!(p.degree(), Some(2));
/// // In characteristic 2: p(1) = 3 + 1 = 2.
/// assert_eq!(p.eval(Gf256::ONE), Gf256::new(2));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Polynomial {
    /// Coefficients, lowest degree first, with no trailing zeros.
    coeffs: Vec<Gf256>,
}

impl Polynomial {
    /// Creates a polynomial from coefficients (lowest degree first);
    /// trailing zeros are trimmed.
    pub fn new(mut coeffs: Vec<Gf256>) -> Self {
        while coeffs.last() == Some(&Gf256::ZERO) {
            coeffs.pop();
        }
        Polynomial { coeffs }
    }

    /// The zero polynomial.
    pub fn zero() -> Self {
        Polynomial { coeffs: Vec::new() }
    }

    /// The constant polynomial `c`.
    pub fn constant(c: Gf256) -> Self {
        Polynomial::new(vec![c])
    }

    /// The coefficients, lowest degree first (no trailing zeros).
    pub fn coefficients(&self) -> &[Gf256] {
        &self.coeffs
    }

    /// The degree, or `None` for the zero polynomial.
    pub fn degree(&self) -> Option<usize> {
        self.coeffs.len().checked_sub(1)
    }

    /// Whether this is the zero polynomial.
    pub fn is_zero(&self) -> bool {
        self.coeffs.is_empty()
    }

    /// Evaluates at `x` by Horner's rule.
    pub fn eval(&self, x: Gf256) -> Gf256 {
        self.coeffs
            .iter()
            .rev()
            .fold(Gf256::ZERO, |acc, &c| acc * x + c)
    }

    /// Polynomial addition (= subtraction in characteristic 2).
    pub fn add(&self, other: &Polynomial) -> Polynomial {
        let n = self.coeffs.len().max(other.coeffs.len());
        let coeffs = (0..n)
            .map(|i| {
                self.coeffs.get(i).copied().unwrap_or(Gf256::ZERO)
                    + other.coeffs.get(i).copied().unwrap_or(Gf256::ZERO)
            })
            .collect();
        Polynomial::new(coeffs)
    }

    /// Polynomial multiplication (schoolbook).
    pub fn mul(&self, other: &Polynomial) -> Polynomial {
        if self.is_zero() || other.is_zero() {
            return Polynomial::zero();
        }
        let mut coeffs = vec![Gf256::ZERO; self.coeffs.len() + other.coeffs.len() - 1];
        for (i, &a) in self.coeffs.iter().enumerate() {
            for (j, &b) in other.coeffs.iter().enumerate() {
                coeffs[i + j] += a * b;
            }
        }
        Polynomial::new(coeffs)
    }

    /// Multiplies every coefficient by `c`.
    pub fn scale(&self, c: Gf256) -> Polynomial {
        Polynomial::new(self.coeffs.iter().map(|&a| a * c).collect())
    }

    /// The unique polynomial of degree `< points.len()` passing through
    /// the given `(x, y)` points (Lagrange interpolation).
    ///
    /// # Panics
    ///
    /// Panics if `points` is empty or contains duplicate x values.
    pub fn interpolate(points: &[(Gf256, Gf256)]) -> Polynomial {
        assert!(!points.is_empty(), "interpolation needs at least one point");
        for (i, (xi, _)) in points.iter().enumerate() {
            for (xj, _) in &points[i + 1..] {
                assert_ne!(xi, xj, "interpolation points must be distinct");
            }
        }
        let mut acc = Polynomial::zero();
        for (i, &(xi, yi)) in points.iter().enumerate() {
            // Basis polynomial L_i = Π_{j≠i} (x - x_j) / (x_i - x_j).
            let mut basis = Polynomial::constant(Gf256::ONE);
            let mut denom = Gf256::ONE;
            for (j, &(xj, _)) in points.iter().enumerate() {
                if i != j {
                    // (x + x_j) since -x_j == x_j.
                    basis = basis.mul(&Polynomial::new(vec![xj, Gf256::ONE]));
                    denom *= xi + xj;
                }
            }
            let scale = yi
                * denom
                    .inv()
                    .expect("distinct points give non-zero denominator");
            acc = acc.add(&basis.scale(scale));
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn poly(vals: &[u8]) -> Polynomial {
        Polynomial::new(vals.iter().map(|&v| Gf256::new(v)).collect())
    }

    #[test]
    fn trailing_zeros_are_trimmed() {
        let p = poly(&[1, 2, 0, 0]);
        assert_eq!(p.degree(), Some(1));
        assert_eq!(poly(&[0, 0]).degree(), None);
        assert!(poly(&[]).is_zero());
    }

    #[test]
    fn horner_matches_naive_eval() {
        let p = poly(&[7, 3, 0, 5]);
        for x in 0..=255u8 {
            let x = Gf256::new(x);
            let naive = Gf256::new(7) + Gf256::new(3) * x + Gf256::new(5) * x.pow(3);
            assert_eq!(p.eval(x), naive);
        }
    }

    #[test]
    fn addition_is_pointwise() {
        let (a, b) = (poly(&[1, 2, 3]), poly(&[5, 0, 3, 9]));
        let sum = a.add(&b);
        for x in [0u8, 1, 7, 200] {
            let x = Gf256::new(x);
            assert_eq!(sum.eval(x), a.eval(x) + b.eval(x));
        }
        // a + a = 0 in characteristic 2.
        assert!(a.add(&a).is_zero());
    }

    #[test]
    fn multiplication_is_pointwise() {
        let (a, b) = (poly(&[1, 2, 3]), poly(&[5, 4]));
        let prod = a.mul(&b);
        assert_eq!(prod.degree(), Some(3));
        for x in [0u8, 1, 9, 133, 255] {
            let x = Gf256::new(x);
            assert_eq!(prod.eval(x), a.eval(x) * b.eval(x));
        }
        assert!(a.mul(&Polynomial::zero()).is_zero());
    }

    #[test]
    fn interpolation_recovers_polynomial() {
        let p = poly(&[9, 1, 0, 4, 17]);
        let points: Vec<(Gf256, Gf256)> = (0..5)
            .map(|i| {
                let x = Gf256::exp(i);
                (x, p.eval(x))
            })
            .collect();
        assert_eq!(Polynomial::interpolate(&points), p);
    }

    #[test]
    fn interpolation_from_any_k_of_n_points() {
        // The Reed–Solomon property stated polynomially: a degree-3
        // message polynomial evaluated at 6 points is recoverable from
        // any 4 of them.
        let msg = poly(&[42, 7, 19, 3]);
        let evals: Vec<(Gf256, Gf256)> = (0..6)
            .map(|i| {
                let x = Gf256::exp(i);
                (x, msg.eval(x))
            })
            .collect();
        // A few 4-subsets.
        for subset in [[0usize, 1, 2, 3], [2, 3, 4, 5], [0, 2, 4, 5], [1, 2, 3, 5]] {
            let pts: Vec<(Gf256, Gf256)> = subset.iter().map(|&i| evals[i]).collect();
            assert_eq!(Polynomial::interpolate(&pts), msg, "subset {subset:?}");
        }
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn duplicate_points_panic() {
        let pts = [(Gf256::ONE, Gf256::ONE), (Gf256::ONE, Gf256::new(2))];
        let _ = Polynomial::interpolate(&pts);
    }
}
