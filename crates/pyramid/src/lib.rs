//! Pyramid codes: locally repairable codes built from Reed–Solomon
//! (Huang, Chen & Li; deployed in Windows Azure Storage).
//!
//! A `(k, l, g)` Pyramid code (paper §III-B) stores `k` data blocks,
//! `l` local parity blocks (one per group of `k/l` data blocks), and `g`
//! global parity blocks:
//!
//! * a data or local-parity block is repaired from the `k/l` other blocks
//!   of its group — *locality* `k/l`, the whole point of the construction;
//! * a global parity block is repaired from the `k` data blocks;
//! * any `g + 1` block failures are tolerated.
//!
//! The construction starts from a `(k, g+1)` MDS code whose parity matrix
//! is a column-rescaled Cauchy with an all-ones first row; that XOR row is
//! *split* into the `l` per-group local parities, and the remaining `g`
//! rows become the global parities. Splitting preserves the `g + 1`
//! failure tolerance (verified exhaustively in this crate's tests).
//!
//! Block order groups local parities with their data blocks:
//! `[d₁ … d_{k/l}, L₁ | d … d, L₂ | … | G₁ … G_g]`, matching the grouping
//! the paper uses for Galloper weight assignment (§V-B).
//!
//! # Examples
//!
//! ```
//! use galloper_pyramid::Pyramid;
//! use galloper_erasure::ErasureCode;
//!
//! // The paper's running example: (4, 2, 1).
//! let code = Pyramid::new(4, 2, 1, 1024)?;
//! let data = vec![42u8; code.message_len()];
//! let blocks = code.encode(&data)?;
//!
//! // A data block repairs from just its group: 2 reads instead of 4.
//! let plan = code.repair_plan(0)?;
//! assert_eq!(plan.fan_in(), 2);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use galloper_erasure::{
    delegate_erasure_code, BlockRole, ConstructionError, DataLayout, LinearCode, RepairPlan,
};
use galloper_gf::Gf256;
use galloper_linalg::Matrix;

/// A `(k, l, g)` Pyramid code with block-size granularity.
///
/// Requires `l ≥ 1` and `l | k`; `g` may be zero (a degenerate per-group
/// RAID-4). See the [crate docs](crate) for the layout and an example.
#[derive(Debug, Clone)]
pub struct Pyramid {
    inner: LinearCode,
    k: usize,
    l: usize,
    g: usize,
}

impl Pyramid {
    /// Creates a `(k, l, g)` Pyramid code with blocks of `block_size`
    /// bytes.
    ///
    /// # Errors
    ///
    /// [`ConstructionError`] if parameters are out of range: `k == 0`,
    /// `l == 0`, `l ∤ k`, `k + g + 1 > 255`, or `block_size == 0`.
    pub fn new(k: usize, l: usize, g: usize, block_size: usize) -> Result<Self, ConstructionError> {
        if k == 0 || l == 0 || !k.is_multiple_of(l) || k + g + 1 > 255 {
            return Err(ConstructionError::ComponentMismatch);
        }
        let group_size = k / l;
        let n = k + l + g;

        // MDS parity with an all-ones first row; splitting that row yields
        // the local parities.
        let parity = Matrix::cauchy_with_xor_row(g + 1, k);

        let mut rows: Vec<Vec<u8>> = Vec::with_capacity(n);
        let mut roles = Vec::with_capacity(n);
        let mut assignments: Vec<Vec<usize>> = Vec::with_capacity(n);
        for j in 0..l {
            for i in 0..group_size {
                let data_idx = j * group_size + i;
                let mut row = vec![0u8; k];
                row[data_idx] = 1;
                rows.push(row);
                roles.push(BlockRole::Data);
                assignments.push(vec![data_idx]);
            }
            // Local parity of group j: the XOR-row restricted to the group.
            let mut row = vec![0u8; k];
            for i in 0..group_size {
                let c = j * group_size + i;
                row[c] = parity.get(0, c).value();
            }
            rows.push(row);
            roles.push(BlockRole::LocalParity);
            assignments.push(Vec::new());
        }
        for t in 1..=g {
            rows.push((0..k).map(|c| parity.get(t, c).value()).collect());
            roles.push(BlockRole::GlobalParity);
            assignments.push(Vec::new());
        }
        let generator = Matrix::from_rows(&rows);
        let layout = DataLayout::new(assignments, 1);

        let plans = (0..n)
            .map(|b| RepairPlan::new(b, Self::repair_sources(k, l, g, b)))
            .collect();

        let inner = LinearCode::new(generator, k, roles, layout, plans, block_size)?;
        Ok(Pyramid { inner, k, l, g })
    }

    /// Repair sources for block `b` under the grouped block order.
    fn repair_sources(k: usize, l: usize, _g: usize, b: usize) -> Vec<usize> {
        let group_size = k / l;
        let group_span = group_size + 1;
        if b < l * group_span {
            // Data or local parity: the other blocks of its group.
            let group = b / group_span;
            (group * group_span..(group + 1) * group_span)
                .filter(|&x| x != b)
                .collect()
        } else {
            // Global parity: all k data blocks.
            (0..l * group_span)
                .filter(|&x| (x % group_span) != group_size)
                .collect()
        }
    }

    /// The number of data blocks `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The number of local parity blocks `l` (= number of groups).
    pub fn l(&self) -> usize {
        self.l
    }

    /// The number of global parity blocks `g`.
    pub fn g(&self) -> usize {
        self.g
    }

    /// Size of each local group in data blocks (`k / l`) — the locality of
    /// data and local-parity blocks.
    pub fn group_size(&self) -> usize {
        self.k / self.l
    }

    /// The block indices of local group `j` (its data blocks plus its
    /// local parity block).
    ///
    /// # Panics
    ///
    /// Panics if `j >= l`.
    pub fn local_group(&self, j: usize) -> std::ops::Range<usize> {
        assert!(j < self.l, "group index out of range");
        let span = self.group_size() + 1;
        j * span..(j + 1) * span
    }

    /// The group index of `block`, or `None` for global parity blocks.
    ///
    /// # Panics
    ///
    /// Panics if `block` is out of range.
    pub fn group_of(&self, block: usize) -> Option<usize> {
        assert!(block < self.k + self.l + self.g, "block index out of range");
        let span = self.group_size() + 1;
        (block < self.l * span).then(|| block / span)
    }

    /// The underlying generic linear code.
    pub fn as_linear(&self) -> &LinearCode {
        &self.inner
    }

    /// Overrides the number of threads used by bulk kernels.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.inner = self.inner.with_threads(threads);
        self
    }

    /// The `(g+1) × k` MDS parity matrix this code was derived from, with
    /// the XOR row first. Exposed for the Galloper construction, which
    /// must agree with Pyramid block-for-block.
    pub fn derived_parity(k: usize, g: usize) -> Matrix {
        Matrix::cauchy_with_xor_row(g + 1, k)
    }
}

delegate_erasure_code!(Pyramid, inner);

impl galloper_erasure::AsLinearCode for Pyramid {
    fn as_linear_code(&self) -> &LinearCode {
        &self.inner
    }
}

/// Returns every size-`size` subset of `0..n`. Exposed for exhaustive
/// failure-pattern tests here and in dependent crates' test suites.
pub fn subsets(n: usize, size: usize) -> Vec<Vec<usize>> {
    fn go(start: usize, n: usize, size: usize, acc: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
        if acc.len() == size {
            out.push(acc.clone());
            return;
        }
        // Prune: not enough items left.
        if n - start < size - acc.len() {
            return;
        }
        for i in start..n {
            acc.push(i);
            go(i + 1, n, size, acc, out);
            acc.pop();
        }
    }
    let mut out = Vec::new();
    go(0, n, size, &mut Vec::new(), &mut out);
    out
}

/// XOR helper used in tests: sums the given byte slices in GF(2⁸).
#[doc(hidden)]
pub fn xor_all(slices: &[&[u8]]) -> Vec<u8> {
    let mut out = vec![0u8; slices.first().map_or(0, |s| s.len())];
    for s in slices {
        for (o, &v) in out.iter_mut().zip(*s) {
            *o = (Gf256::new(*o) + Gf256::new(v)).value();
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use galloper_erasure::ErasureCode;

    fn sample_data(len: usize) -> Vec<u8> {
        (0..len)
            .map(|i| (i.wrapping_mul(167) % 253) as u8)
            .collect()
    }

    #[test]
    fn paper_example_structure() {
        // (4, 2, 1): 7 blocks ordered [d, d, L | d, d, L | G].
        let code = Pyramid::new(4, 2, 1, 8).unwrap();
        assert_eq!(code.num_blocks(), 7);
        assert_eq!(code.block_role(0), BlockRole::Data);
        assert_eq!(code.block_role(2), BlockRole::LocalParity);
        assert_eq!(code.block_role(5), BlockRole::LocalParity);
        assert_eq!(code.block_role(6), BlockRole::GlobalParity);
        assert_eq!(code.local_group(0), 0..3);
        assert_eq!(code.local_group(1), 3..6);
        assert_eq!(code.group_of(4), Some(1));
        assert_eq!(code.group_of(6), None);
    }

    #[test]
    fn encode_roundtrip_all_blocks() {
        let code = Pyramid::new(4, 2, 1, 16).unwrap();
        let data = sample_data(64);
        let blocks = code.encode(&data).unwrap();
        let avail: Vec<Option<&[u8]>> = blocks.iter().map(|b| Some(b.as_slice())).collect();
        assert_eq!(code.decode(&avail).unwrap(), data);
    }

    #[test]
    fn local_parity_is_xor_of_group() {
        let code = Pyramid::new(4, 2, 1, 16).unwrap();
        let data = sample_data(64);
        let blocks = code.encode(&data).unwrap();
        // Group 0 = blocks 0,1 data + block 2 local parity.
        let expect = xor_all(&[&blocks[0], &blocks[1]]);
        assert_eq!(blocks[2], expect);
        let expect = xor_all(&[&blocks[3], &blocks[4]]);
        assert_eq!(blocks[5], expect);
    }

    #[test]
    fn locality_of_each_block() {
        let code = Pyramid::new(6, 2, 2, 4).unwrap();
        // Groups of 3 data + 1 local: locality 3 for blocks 0..8.
        for b in 0..8 {
            assert_eq!(code.repair_plan(b).unwrap().fan_in(), 3, "block {b}");
        }
        // Globals read k = 6.
        for b in 8..10 {
            assert_eq!(code.repair_plan(b).unwrap().fan_in(), 6, "block {b}");
        }
    }

    #[test]
    fn reconstruct_every_block() {
        for (k, l, g) in [(4, 2, 1), (6, 3, 1), (6, 2, 2), (4, 1, 1), (4, 4, 1)] {
            let code = Pyramid::new(k, l, g, 8).unwrap();
            let data = sample_data(code.message_len());
            let blocks = code.encode(&data).unwrap();
            for target in 0..code.num_blocks() {
                let plan = code.repair_plan(target).unwrap();
                let sources: Vec<(usize, &[u8])> = plan
                    .sources()
                    .iter()
                    .map(|&s| (s, blocks[s].as_slice()))
                    .collect();
                assert_eq!(
                    code.reconstruct(target, &sources).unwrap(),
                    blocks[target],
                    "({k},{l},{g}) target {target}"
                );
            }
        }
    }

    #[test]
    fn tolerates_any_g_plus_one_failures() {
        for (k, l, g) in [(4, 2, 1), (6, 3, 1), (6, 2, 2), (8, 4, 1), (4, 2, 2)] {
            let code = Pyramid::new(k, l, g, 1).unwrap();
            let n = code.num_blocks();
            for erased in subsets(n, g + 1) {
                let mut avail = vec![true; n];
                for &e in &erased {
                    avail[e] = false;
                }
                assert!(
                    code.can_decode(&avail),
                    "({k},{l},{g}) must survive erasure of {erased:?}"
                );
            }
        }
    }

    #[test]
    fn some_g_plus_two_failures_are_fatal() {
        // The paper's example: erasing A, B, and the global parity of the
        // (4,2,1) code is unrecoverable. In our block order that is
        // blocks 0, 1, 6.
        let code = Pyramid::new(4, 2, 1, 1).unwrap();
        assert!(!code.can_decode(&[false, false, true, true, true, true, false]));
        // ... but many g+2 patterns ARE recoverable thanks to locality:
        assert!(code.can_decode(&[false, true, true, false, true, true, false]));
    }

    #[test]
    fn decode_with_g_plus_one_erasures_recovers_data() {
        let code = Pyramid::new(4, 2, 1, 8).unwrap();
        let data = sample_data(32);
        let blocks = code.encode(&data).unwrap();
        for erased in subsets(7, 2) {
            let avail: Vec<Option<&[u8]>> = (0..7)
                .map(|b| (!erased.contains(&b)).then(|| blocks[b].as_slice()))
                .collect();
            assert_eq!(code.decode(&avail).unwrap(), data, "erased {erased:?}");
        }
    }

    #[test]
    fn storage_overhead_matches_paper() {
        // (k+l+g)/k: (4+2+1)/4 = 1.75.
        let code = Pyramid::new(4, 2, 1, 1).unwrap();
        assert!((code.storage_overhead() - 1.75).abs() < 1e-12);
    }

    #[test]
    fn single_group_pyramid() {
        // l = 1: one local parity over all k data blocks.
        let code = Pyramid::new(4, 1, 1, 4).unwrap();
        assert_eq!(code.num_blocks(), 6);
        assert_eq!(code.repair_plan(0).unwrap().fan_in(), 4);
        let data = sample_data(code.message_len());
        let blocks = code.encode(&data).unwrap();
        let avail: Vec<Option<&[u8]>> = (0..6)
            .map(|b| (b != 0 && b != 5).then(|| blocks[b].as_slice()))
            .collect();
        assert_eq!(code.decode(&avail).unwrap(), data);
    }

    #[test]
    fn rejects_invalid_parameters() {
        assert!(Pyramid::new(0, 1, 1, 8).is_err());
        assert!(Pyramid::new(4, 0, 1, 8).is_err());
        assert!(Pyramid::new(4, 3, 1, 8).is_err(), "l must divide k");
        assert!(Pyramid::new(4, 2, 1, 0).is_err());
        assert!(Pyramid::new(254, 2, 4, 8).is_err());
    }

    #[test]
    fn zero_global_parity_is_degenerate_but_valid() {
        let code = Pyramid::new(4, 2, 0, 4).unwrap();
        assert_eq!(code.num_blocks(), 6);
        // Tolerates one failure per group.
        assert!(code.can_decode(&[false, true, true, false, true, true]));
        assert!(!code.can_decode(&[false, false, true, true, true, true]));
    }

    #[test]
    fn subsets_helper() {
        assert_eq!(subsets(4, 2).len(), 6);
        assert_eq!(subsets(5, 0), vec![Vec::<usize>::new()]);
        assert_eq!(subsets(3, 3).len(), 1);
        assert!(subsets(2, 3).is_empty());
    }
}
