//! A generic linear erasure code driven by an explicit stripe-level
//! generator matrix.
//!
//! Every code family in this workspace — Reed–Solomon, Pyramid, Carousel,
//! Galloper — is a linear code over GF(2⁸): encoding is `G · x` for a
//! generator `G` of shape `(n·N) × (k·N)` acting on `k·N` data stripes.
//! [`LinearCode`] implements encode, decode, reconstruction, and
//! decodability checks once, generically, from `G`; the code crates only
//! *construct* the right generator, layout, and repair plans.
//!
//! Centralizing the engine has a correctness payoff: the constructor
//! validates that the generator, layout, and repair plans are mutually
//! consistent (systematic rows really are identity rows; every repair plan
//! really can express its target block from its sources), so an invalid
//! construction fails immediately instead of corrupting data later.

use galloper_gf::Gf256;
use galloper_linalg::{apply_parallel, apply_parallel_into, Matrix, RowBasis};
use galloper_obs::counter;

use crate::{BlockRole, CodeError, DataLayout, ErasureCode, RepairPlan};

use core::fmt;

/// Errors detected while assembling a [`LinearCode`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ConstructionError {
    /// The generator's shape does not match `n·N × k·N`.
    GeneratorShape {
        /// Rows and columns found.
        got: (usize, usize),
        /// Rows and columns required.
        expected: (usize, usize),
    },
    /// The generator does not have full column rank, so decoding from all
    /// blocks would already be impossible.
    RankDeficient,
    /// The layout disagrees with the generator: a stored position the
    /// layout marks as original stripe `orig` does not carry the identity
    /// row `e_orig`.
    LayoutMismatch {
        /// Block of the offending stripe.
        block: usize,
        /// Stored stripe position within the block.
        position: usize,
    },
    /// A repair plan's target block cannot be expressed from its sources.
    PlanUnsatisfiable {
        /// The target block of the failing plan.
        block: usize,
    },
    /// Component counts disagree (roles, plans, layout block counts).
    ComponentMismatch,
    /// The stripe size must be non-zero.
    ZeroStripeSize,
}

impl fmt::Display for ConstructionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConstructionError::GeneratorShape { got, expected } => write!(
                f,
                "generator is {}×{}, expected {}×{}",
                got.0, got.1, expected.0, expected.1
            ),
            ConstructionError::RankDeficient => {
                f.write_str("generator does not have full column rank")
            }
            ConstructionError::LayoutMismatch { block, position } => write!(
                f,
                "block {block} stripe {position} is declared systematic but is not an identity row"
            ),
            ConstructionError::PlanUnsatisfiable { block } => write!(
                f,
                "repair plan for block {block} cannot reconstruct it from the listed sources"
            ),
            ConstructionError::ComponentMismatch => {
                f.write_str("role/plan/layout counts do not match the block count")
            }
            ConstructionError::ZeroStripeSize => f.write_str("stripe size must be non-zero"),
        }
    }
}

impl std::error::Error for ConstructionError {}

/// A concrete linear erasure code: a validated generator matrix plus the
/// metadata needed to run it on bytes.
///
/// Construct via [`LinearCode::new`]; the code crates wrap this type.
#[derive(Debug, Clone)]
pub struct LinearCode {
    generator: Matrix,
    k: usize,
    n: usize,
    stripes_per_block: usize,
    stripe_size: usize,
    roles: Vec<BlockRole>,
    layout: DataLayout,
    plans: Vec<RepairPlan>,
    /// Per block: an `N × (fan_in·N)` matrix rebuilding the block's stripes
    /// from the concatenated stripes of its repair sources.
    repair_matrices: Vec<Matrix>,
    threads: usize,
}

impl LinearCode {
    /// Assembles and validates a linear code.
    ///
    /// * `generator` — stripe-level generator, `(n·N) × (k·N)`, rows in
    ///   stored order (any stripe rotation already applied).
    /// * `k` — number of systematic-basis blocks.
    /// * `roles` — role of each of the `n` blocks.
    /// * `layout` — where original stripes live; must agree with the
    ///   identity rows of `generator`.
    /// * `plans` — one repair plan per block.
    /// * `stripe_size` — bytes per stripe.
    ///
    /// # Errors
    ///
    /// Any [`ConstructionError`] describing the first inconsistency found.
    pub fn new(
        generator: Matrix,
        k: usize,
        roles: Vec<BlockRole>,
        layout: DataLayout,
        plans: Vec<RepairPlan>,
        stripe_size: usize,
    ) -> Result<Self, ConstructionError> {
        if stripe_size == 0 {
            return Err(ConstructionError::ZeroStripeSize);
        }
        let n = roles.len();
        let big_n = layout.stripes_per_block();
        if layout.num_blocks() != n || plans.len() != n || k == 0 || k > n {
            return Err(ConstructionError::ComponentMismatch);
        }
        if layout.total_data_stripes() != k * big_n {
            return Err(ConstructionError::ComponentMismatch);
        }
        let expected = (n * big_n, k * big_n);
        if (generator.rows(), generator.cols()) != expected {
            return Err(ConstructionError::GeneratorShape {
                got: (generator.rows(), generator.cols()),
                expected,
            });
        }

        // Full column rank: all-blocks decode must be possible.
        if generator.rank() != k * big_n {
            return Err(ConstructionError::RankDeficient);
        }

        // Systematic positions carry identity rows.
        for b in 0..n {
            for (pos, &orig) in layout.block_assignment(b).iter().enumerate() {
                let row = generator.row(b * big_n + pos);
                let ok = row
                    .iter()
                    .enumerate()
                    .all(|(j, &v)| v == u8::from(j == orig));
                if !ok {
                    return Err(ConstructionError::LayoutMismatch {
                        block: b,
                        position: pos,
                    });
                }
            }
        }

        // Derive (and thereby verify) the repair matrix of every plan.
        let mut repair_matrices = Vec::with_capacity(n);
        for plan in &plans {
            let b = plan.target();
            let src_rows: Vec<usize> = plan
                .sources()
                .iter()
                .flat_map(|&s| s * big_n..(s + 1) * big_n)
                .collect();
            let source_matrix = generator.select_rows(&src_rows);
            let mut rm = Matrix::zeros(big_n, src_rows.len());
            for stripe in 0..big_n {
                let target_row: Vec<Gf256> = generator
                    .row(b * big_n + stripe)
                    .iter()
                    .map(|&v| Gf256::new(v))
                    .collect();
                let coeffs = source_matrix
                    .express_row(&target_row)
                    .ok_or(ConstructionError::PlanUnsatisfiable { block: b })?;
                for (j, c) in coeffs.into_iter().enumerate() {
                    rm.set(stripe, j, c);
                }
            }
            repair_matrices.push(rm);
        }

        let threads = std::thread::available_parallelism()
            .map(|p| p.get().min(8))
            .unwrap_or(1);

        Ok(LinearCode {
            generator,
            k,
            n,
            stripes_per_block: big_n,
            stripe_size,
            roles,
            layout,
            plans,
            repair_matrices,
            threads,
        })
    }

    /// Overrides the number of threads used by bulk encode/decode.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// The validated stripe-level generator matrix.
    pub fn generator(&self) -> &Matrix {
        &self.generator
    }

    /// Stripes per block (the paper's N).
    pub fn stripes_per_block(&self) -> usize {
        self.stripes_per_block
    }

    /// Bytes per stripe.
    pub fn stripe_size(&self) -> usize {
        self.stripe_size
    }

    /// The repair matrix validated for `block`'s plan: shape
    /// `N × (fan_in · N)`.
    ///
    /// # Panics
    ///
    /// Panics if `block` is out of range.
    pub fn repair_matrix(&self, block: usize) -> &Matrix {
        &self.repair_matrices[block]
    }

    fn split_stripes<'a>(&self, data: &'a [u8]) -> Vec<&'a [u8]> {
        data.chunks_exact(self.stripe_size).collect()
    }
}

impl ErasureCode for LinearCode {
    fn num_data_blocks(&self) -> usize {
        self.k
    }

    fn num_blocks(&self) -> usize {
        self.n
    }

    fn block_role(&self, block: usize) -> BlockRole {
        self.roles[block]
    }

    fn message_len(&self) -> usize {
        self.k * self.stripes_per_block * self.stripe_size
    }

    fn block_len(&self) -> usize {
        self.stripes_per_block * self.stripe_size
    }

    fn encode(&self, data: &[u8]) -> Result<Vec<Vec<u8>>, CodeError> {
        let mut blocks: Vec<Vec<u8>> = (0..self.n).map(|_| vec![0u8; self.block_len()]).collect();
        let mut views: Vec<&mut [u8]> = blocks.iter_mut().map(|b| b.as_mut_slice()).collect();
        self.encode_into(data, &mut views)?;
        Ok(blocks)
    }

    fn encode_into(&self, data: &[u8], blocks: &mut [&mut [u8]]) -> Result<(), CodeError> {
        if data.len() != self.message_len() {
            return Err(CodeError::InvalidDataLength {
                got: data.len(),
                multiple_of: self.message_len(),
            });
        }
        if blocks.len() != self.n {
            return Err(CodeError::WrongBlockCount {
                got: blocks.len(),
                expected: self.n,
            });
        }
        if blocks.iter().any(|b| b.len() != self.block_len()) {
            return Err(CodeError::BlockSizeMismatch);
        }
        let _t = galloper_obs::global().timer("erasure.encode_us");
        counter!("erasure.encode.calls", 1);
        counter!("erasure.encode.bytes", data.len());
        let inputs = self.split_stripes(data);
        // One output slice per generator row: stripe s of block b lives at
        // byte range [s·stripe, (s+1)·stripe) of block b's buffer, so the
        // matrix product writes every block in place with no intermediate
        // stripe allocations.
        let mut out_refs: Vec<&mut [u8]> = blocks
            .iter_mut()
            .flat_map(|block| block.chunks_exact_mut(self.stripe_size))
            .collect();
        apply_parallel_into(&self.generator, &inputs, &mut out_refs, self.threads);
        Ok(())
    }

    fn decode(&self, blocks: &[Option<&[u8]>]) -> Result<Vec<u8>, CodeError> {
        if blocks.len() != self.n {
            return Err(CodeError::WrongBlockCount {
                got: blocks.len(),
                expected: self.n,
            });
        }
        for b in blocks.iter().flatten() {
            if b.len() != self.block_len() {
                return Err(CodeError::BlockSizeMismatch);
            }
        }
        let _t = galloper_obs::global().timer("erasure.decode_us");
        counter!("erasure.decode.calls", 1);
        counter!(
            "erasure.decode.bytes_read",
            blocks.iter().flatten().map(|b| b.len() as u64).sum::<u64>()
        );
        let kn = self.k * self.stripes_per_block;

        // Greedily select kN independent generator rows among available
        // blocks, preferring systematic (identity) rows, which keeps the
        // solve matrix sparse.
        let mut basis = RowBasis::new(kn);
        let mut chosen_rows: Vec<usize> = Vec::with_capacity(kn);
        let scan = |rows: &mut Vec<usize>, basis: &mut RowBasis, want_identity: bool| {
            for (b, block) in blocks.iter().enumerate() {
                if block.is_none() {
                    continue;
                }
                let data_stripes = self.layout.data_stripes(b);
                for s in 0..self.stripes_per_block {
                    if basis.is_complete() {
                        return;
                    }
                    let is_identity = s < data_stripes;
                    if is_identity != want_identity {
                        continue;
                    }
                    let row = b * self.stripes_per_block + s;
                    if basis.try_add(self.generator.row(row)) {
                        rows.push(row);
                    }
                }
            }
        };
        scan(&mut chosen_rows, &mut basis, true);
        scan(&mut chosen_rows, &mut basis, false);
        if !basis.is_complete() {
            let available: Vec<usize> = blocks
                .iter()
                .enumerate()
                .filter_map(|(i, b)| b.is_some().then_some(i))
                .collect();
            return Err(CodeError::Undecodable { available });
        }

        let coeff = self.generator.select_rows(&chosen_rows);
        let inv = coeff
            .inverted()
            .expect("rows chosen via RowBasis are independent");

        let payload: Vec<&[u8]> = chosen_rows
            .iter()
            .map(|&row| {
                let b = row / self.stripes_per_block;
                let s = row % self.stripes_per_block;
                let block = blocks[b].expect("chosen rows come from available blocks");
                &block[s * self.stripe_size..(s + 1) * self.stripe_size]
            })
            .collect();
        let decoded = apply_parallel(&inv, &payload, self.threads);
        let mut out = Vec::with_capacity(self.message_len());
        for stripe in decoded {
            out.extend_from_slice(&stripe);
        }
        Ok(out)
    }

    fn repair_plan(&self, target: usize) -> Result<RepairPlan, CodeError> {
        let plan = self
            .plans
            .get(target)
            .cloned()
            .ok_or(CodeError::BlockIndexOutOfRange {
                index: target,
                num_blocks: self.n,
            })?;
        counter!("erasure.repair.plans", 1);
        counter!("erasure.repair.symbols_read", plan.sources().len());
        Ok(plan)
    }

    fn reconstruct(&self, target: usize, sources: &[(usize, &[u8])]) -> Result<Vec<u8>, CodeError> {
        let plan = self.repair_plan(target)?;
        let got: Vec<usize> = sources.iter().map(|(i, _)| *i).collect();
        if got != plan.sources() {
            return Err(CodeError::WrongSources {
                expected: plan.sources().to_vec(),
                got,
            });
        }
        for (_, b) in sources {
            if b.len() != self.block_len() {
                return Err(CodeError::BlockSizeMismatch);
            }
        }
        let _t = galloper_obs::global().timer("erasure.reconstruct_us");
        counter!("erasure.reconstruct.calls", 1);
        counter!("erasure.reconstruct.symbols_read", sources.len());
        counter!(
            "erasure.reconstruct.bytes_read",
            sources.len() * self.block_len()
        );
        let stripes: Vec<&[u8]> = sources
            .iter()
            .flat_map(|(_, b)| b.chunks_exact(self.stripe_size))
            .collect();
        let out_stripes = apply_parallel(&self.repair_matrices[target], &stripes, self.threads);
        let mut out = Vec::with_capacity(self.block_len());
        for s in out_stripes {
            out.extend_from_slice(&s);
        }
        Ok(out)
    }

    fn layout(&self) -> DataLayout {
        self.layout.clone()
    }

    fn can_decode(&self, available: &[bool]) -> bool {
        if available.len() != self.n {
            return false;
        }
        let mut basis = RowBasis::new(self.k * self.stripes_per_block);
        for (b, &avail) in available.iter().enumerate() {
            if !avail {
                continue;
            }
            for s in 0..self.stripes_per_block {
                basis.try_add(self.generator.row(b * self.stripes_per_block + s));
                if basis.is_complete() {
                    return true;
                }
            }
        }
        basis.is_complete()
    }
}

/// Access to a code's underlying [`LinearCode`] engine.
///
/// Every code family in this workspace implements this, which unlocks
/// engine-level features (degraded range reads, repair matrices) on any
/// generic `C: ErasureCode + AsLinearCode`.
pub trait AsLinearCode {
    /// The underlying validated linear code.
    fn as_linear_code(&self) -> &LinearCode;
}

impl AsLinearCode for LinearCode {
    fn as_linear_code(&self) -> &LinearCode {
        self
    }
}

/// Implements [`ErasureCode`] for a wrapper struct by delegating every
/// method to an inner field that already implements it.
///
/// ```
/// use galloper_erasure::{delegate_erasure_code, ErasureCode, LinearCode};
///
/// pub struct MyCode { inner: LinearCode }
/// delegate_erasure_code!(MyCode, inner);
/// ```
#[macro_export]
macro_rules! delegate_erasure_code {
    ($ty:ty, $field:ident) => {
        impl $crate::ErasureCode for $ty {
            fn num_data_blocks(&self) -> usize {
                self.$field.num_data_blocks()
            }
            fn num_blocks(&self) -> usize {
                self.$field.num_blocks()
            }
            fn block_role(&self, block: usize) -> $crate::BlockRole {
                self.$field.block_role(block)
            }
            fn message_len(&self) -> usize {
                self.$field.message_len()
            }
            fn block_len(&self) -> usize {
                self.$field.block_len()
            }
            fn encode(&self, data: &[u8]) -> Result<Vec<Vec<u8>>, $crate::CodeError> {
                self.$field.encode(data)
            }
            fn encode_into(
                &self,
                data: &[u8],
                blocks: &mut [&mut [u8]],
            ) -> Result<(), $crate::CodeError> {
                self.$field.encode_into(data, blocks)
            }
            fn decode(&self, blocks: &[Option<&[u8]>]) -> Result<Vec<u8>, $crate::CodeError> {
                self.$field.decode(blocks)
            }
            fn repair_plan(&self, target: usize) -> Result<$crate::RepairPlan, $crate::CodeError> {
                self.$field.repair_plan(target)
            }
            fn reconstruct(
                &self,
                target: usize,
                sources: &[(usize, &[u8])],
            ) -> Result<Vec<u8>, $crate::CodeError> {
                self.$field.reconstruct(target, sources)
            }
            fn layout(&self) -> $crate::DataLayout {
                self.$field.layout()
            }
            fn can_decode(&self, available: &[bool]) -> bool {
                self.$field.can_decode(available)
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A tiny hand-built (2, 1) XOR code: blocks = [a, b, a+b], N = 1.
    fn xor_code(stripe_size: usize) -> LinearCode {
        let generator = Matrix::from_rows(&[vec![1, 0], vec![0, 1], vec![1, 1]]);
        let roles = vec![BlockRole::Data, BlockRole::Data, BlockRole::GlobalParity];
        let layout = DataLayout::systematic(2, 3, 1);
        let plans = vec![
            RepairPlan::new(0, vec![1, 2]),
            RepairPlan::new(1, vec![0, 2]),
            RepairPlan::new(2, vec![0, 1]),
        ];
        LinearCode::new(generator, 2, roles, layout, plans, stripe_size).unwrap()
    }

    #[test]
    fn xor_roundtrip() {
        let code = xor_code(4);
        let data = b"abcdefgh";
        let blocks = code.encode(data).unwrap();
        assert_eq!(blocks.len(), 3);
        assert_eq!(blocks[0], b"abcd");
        assert_eq!(blocks[1], b"efgh");
        let parity: Vec<u8> = blocks[0]
            .iter()
            .zip(&blocks[1])
            .map(|(a, b)| a ^ b)
            .collect();
        assert_eq!(blocks[2], parity);

        // Decode with block 0 missing.
        let decoded = code
            .decode(&[None, Some(&blocks[1]), Some(&blocks[2])])
            .unwrap();
        assert_eq!(decoded, data);
    }

    #[test]
    fn encode_into_matches_encode_and_overwrites_dirty_buffers() {
        let code = xor_code(4);
        let data = b"abcdefgh";
        let fresh = code.encode(data).unwrap();
        let mut bufs: Vec<Vec<u8>> = (0..3).map(|_| vec![0xEE; 4]).collect();
        let mut views: Vec<&mut [u8]> = bufs.iter_mut().map(|b| b.as_mut_slice()).collect();
        code.encode_into(data, &mut views).unwrap();
        assert_eq!(bufs, fresh);

        let mut w0 = [0u8; 4];
        let mut w1 = [0u8; 4];
        let mut wrong: Vec<&mut [u8]> = vec![&mut w0, &mut w1];
        assert!(matches!(
            code.encode_into(data, &mut wrong),
            Err(CodeError::WrongBlockCount {
                got: 2,
                expected: 3
            })
        ));
        let mut views: Vec<&mut [u8]> = bufs.iter_mut().map(|b| b.as_mut_slice()).collect();
        assert!(matches!(
            code.encode_into(b"short", &mut views),
            Err(CodeError::InvalidDataLength { .. })
        ));
        let mut ragged: Vec<Vec<u8>> = vec![vec![0; 4], vec![0; 4], vec![0; 5]];
        let mut views: Vec<&mut [u8]> = ragged.iter_mut().map(|b| b.as_mut_slice()).collect();
        assert!(matches!(
            code.encode_into(data, &mut views),
            Err(CodeError::BlockSizeMismatch)
        ));
    }

    #[test]
    fn xor_reconstruct_each_block() {
        let code = xor_code(4);
        let data = b"01234567";
        let blocks = code.encode(data).unwrap();
        for target in 0..3 {
            let plan = code.repair_plan(target).unwrap();
            let sources: Vec<(usize, &[u8])> = plan
                .sources()
                .iter()
                .map(|&s| (s, blocks[s].as_slice()))
                .collect();
            let rebuilt = code.reconstruct(target, &sources).unwrap();
            assert_eq!(rebuilt, blocks[target], "target {target}");
        }
    }

    #[test]
    fn xor_can_decode_patterns() {
        let code = xor_code(1);
        assert!(code.can_decode(&[true, true, true]));
        assert!(code.can_decode(&[false, true, true]));
        assert!(code.can_decode(&[true, false, true]));
        assert!(code.can_decode(&[true, true, false]));
        assert!(!code.can_decode(&[true, false, false]));
        assert!(!code.can_decode(&[false, false, false]));
    }

    #[test]
    fn construction_rejects_bad_layout() {
        let generator = Matrix::from_rows(&[vec![1, 0], vec![0, 1], vec![1, 1]]);
        // Layout claims block 2 holds original stripe — but its row is (1,1).
        let layout = DataLayout::new(vec![vec![0], vec![], vec![1]], 1);
        let roles = vec![BlockRole::Data, BlockRole::Data, BlockRole::GlobalParity];
        let plans = vec![
            RepairPlan::new(0, vec![1, 2]),
            RepairPlan::new(1, vec![0, 2]),
            RepairPlan::new(2, vec![0, 1]),
        ];
        let err = LinearCode::new(generator, 2, roles, layout, plans, 1).unwrap_err();
        assert_eq!(
            err,
            ConstructionError::LayoutMismatch {
                block: 2,
                position: 0
            }
        );
    }

    #[test]
    fn construction_rejects_unsatisfiable_plan() {
        let generator = Matrix::from_rows(&[vec![1, 0], vec![0, 1], vec![1, 1]]);
        let roles = vec![BlockRole::Data, BlockRole::Data, BlockRole::GlobalParity];
        let layout = DataLayout::systematic(2, 3, 1);
        // Block 0 cannot be rebuilt from block 2 alone.
        let plans = vec![
            RepairPlan::new(0, vec![2]),
            RepairPlan::new(1, vec![0, 2]),
            RepairPlan::new(2, vec![0, 1]),
        ];
        let err = LinearCode::new(generator, 2, roles, layout, plans, 1).unwrap_err();
        assert_eq!(err, ConstructionError::PlanUnsatisfiable { block: 0 });
    }

    #[test]
    fn construction_rejects_rank_deficient_generator() {
        // Second data column never appears: rank 1 < 2.
        let generator = Matrix::from_rows(&[vec![1, 0], vec![1, 0], vec![1, 0]]);
        let roles = vec![BlockRole::Data, BlockRole::Data, BlockRole::GlobalParity];
        let layout = DataLayout::new(vec![vec![0], vec![], vec![]], 1);
        let plans = vec![
            RepairPlan::new(0, vec![1]),
            RepairPlan::new(1, vec![0]),
            RepairPlan::new(2, vec![0]),
        ];
        // Layout only accounts for 1 data stripe but k*N = 2 → caught as
        // component mismatch before the rank check.
        let err = LinearCode::new(generator, 2, roles, layout, plans, 1).unwrap_err();
        assert_eq!(err, ConstructionError::ComponentMismatch);
    }

    #[test]
    fn encode_rejects_wrong_length() {
        let code = xor_code(4);
        assert!(matches!(
            code.encode(b"short"),
            Err(CodeError::InvalidDataLength {
                got: 5,
                multiple_of: 8
            })
        ));
    }

    #[test]
    fn reconstruct_rejects_wrong_sources() {
        let code = xor_code(2);
        let blocks = code.encode(b"abcd").unwrap();
        let bad: Vec<(usize, &[u8])> = vec![(2, blocks[2].as_slice()), (1, blocks[1].as_slice())];
        assert!(matches!(
            code.reconstruct(0, &bad),
            Err(CodeError::WrongSources { .. })
        ));
    }
}
