//! The [`ErasureCode`] trait implemented by every code family in the
//! workspace.

use crate::{CodeError, DataLayout, RepairPlan};

/// The role a block plays in the code's structure.
///
/// Note that for Carousel and Galloper codes these names describe the
/// block's role in the *repair structure* only: original data may live in
/// parity-role blocks too (that is the entire point of those codes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BlockRole {
    /// One of the k blocks holding (a share of) the systematic basis.
    Data,
    /// A local parity block, repairable within its group.
    LocalParity,
    /// A global parity block, repairable only from k blocks.
    GlobalParity,
}

/// A linear erasure code over GF(2⁸) operating on byte blocks.
///
/// An implementation encodes a message of `message_len()` bytes into
/// `num_blocks()` equally sized blocks, any sufficient subset of which can
/// be decoded back, and single blocks of which can be reconstructed
/// according to [`ErasureCode::repair_plan`].
///
/// The message length is fixed per code instance: each code chooses a
/// stripe count N and a stripe size, so `message_len = k · N · stripe_size`.
/// Callers encode large objects by splitting them into messages of this
/// size (padding the tail), exactly as HDFS splits files into coding
/// groups.
pub trait ErasureCode {
    /// Number of blocks holding the systematic basis (the paper's k).
    fn num_data_blocks(&self) -> usize;

    /// Total number of blocks produced by `encode` (k + l + g).
    fn num_blocks(&self) -> usize;

    /// The role of each block; length equals [`ErasureCode::num_blocks`].
    fn block_role(&self, block: usize) -> BlockRole;

    /// The exact message length in bytes accepted by `encode`.
    fn message_len(&self) -> usize;

    /// The size of each encoded block in bytes.
    fn block_len(&self) -> usize;

    /// Encodes `data` into `num_blocks()` blocks of `block_len()` bytes.
    ///
    /// # Errors
    ///
    /// [`CodeError::InvalidDataLength`] if `data.len() != message_len()`.
    fn encode(&self, data: &[u8]) -> Result<Vec<Vec<u8>>, CodeError>;

    /// Encodes `data` into caller-provided block buffers, each exactly
    /// [`ErasureCode::block_len`] bytes.
    ///
    /// This is the zero-copy entry point used by the streaming drivers in
    /// [`stream`](crate::stream): callers checkout page-aligned buffers
    /// from an [`AlignedPool`](crate::stream::AlignedPool) and encode
    /// coding group after coding group with no per-group allocation. The
    /// buffers are plain mutable byte slices, so any backing storage
    /// works — pooled aligned buffers, `Vec`s, or views into a larger
    /// mapping. The default implementation delegates to
    /// [`ErasureCode::encode`] and copies the resulting blocks into the
    /// buffers; [`LinearCode`](crate::LinearCode) overrides it to write
    /// into the buffers directly.
    ///
    /// # Errors
    ///
    /// * [`CodeError::InvalidDataLength`] if `data.len() != message_len()`.
    /// * [`CodeError::WrongBlockCount`] if `blocks.len() != num_blocks()`.
    /// * [`CodeError::BlockSizeMismatch`] if any buffer is not exactly
    ///   `block_len()` bytes.
    fn encode_into(&self, data: &[u8], blocks: &mut [&mut [u8]]) -> Result<(), CodeError> {
        if blocks.len() != self.num_blocks() {
            return Err(CodeError::WrongBlockCount {
                got: blocks.len(),
                expected: self.num_blocks(),
            });
        }
        if blocks.iter().any(|b| b.len() != self.block_len()) {
            return Err(CodeError::BlockSizeMismatch);
        }
        for (dst, src) in blocks.iter_mut().zip(self.encode(data)?) {
            dst.copy_from_slice(&src);
        }
        Ok(())
    }

    /// Decodes the original message from the available blocks
    /// (`None` marks an erased block).
    ///
    /// # Errors
    ///
    /// * [`CodeError::WrongBlockCount`] if `blocks.len() != num_blocks()`.
    /// * [`CodeError::BlockSizeMismatch`] if available blocks are not all
    ///   `block_len()` bytes.
    /// * [`CodeError::Undecodable`] if the erasure pattern is not
    ///   recoverable.
    fn decode(&self, blocks: &[Option<&[u8]>]) -> Result<Vec<u8>, CodeError>;

    /// The repair plan for reconstructing `target` when every other block
    /// is available.
    ///
    /// # Errors
    ///
    /// [`CodeError::BlockIndexOutOfRange`] if `target` is out of range.
    fn repair_plan(&self, target: usize) -> Result<RepairPlan, CodeError>;

    /// Reconstructs block `target` from exactly the sources named by its
    /// repair plan, passed in plan order.
    ///
    /// # Errors
    ///
    /// * [`CodeError::WrongSources`] if the supplied blocks do not match
    ///   the plan.
    /// * [`CodeError::BlockSizeMismatch`] on inconsistent block sizes.
    fn reconstruct(&self, target: usize, sources: &[(usize, &[u8])]) -> Result<Vec<u8>, CodeError>;

    /// Where the original data lives inside the encoded blocks.
    fn layout(&self) -> DataLayout;

    /// Whether the given availability pattern can be decoded.
    ///
    /// The default implementation is conservative and generic: it asks
    /// `decode` with zero-filled blocks and reports whether it succeeds.
    /// Implementations override this with a rank check.
    fn can_decode(&self, available: &[bool]) -> bool {
        if available.len() != self.num_blocks() {
            return false;
        }
        let zeros = vec![0u8; self.block_len()];
        let blocks: Vec<Option<&[u8]>> = available
            .iter()
            .map(|&a| if a { Some(zeros.as_slice()) } else { None })
            .collect();
        self.decode(&blocks).is_ok()
    }

    /// Storage overhead factor: total stored bytes / original bytes.
    fn storage_overhead(&self) -> f64 {
        self.num_blocks() as f64 * self.block_len() as f64 / self.message_len() as f64
    }
}

impl<T: ErasureCode + ?Sized> ErasureCode for Box<T> {
    fn num_data_blocks(&self) -> usize {
        (**self).num_data_blocks()
    }
    fn num_blocks(&self) -> usize {
        (**self).num_blocks()
    }
    fn block_role(&self, block: usize) -> BlockRole {
        (**self).block_role(block)
    }
    fn message_len(&self) -> usize {
        (**self).message_len()
    }
    fn block_len(&self) -> usize {
        (**self).block_len()
    }
    fn encode(&self, data: &[u8]) -> Result<Vec<Vec<u8>>, CodeError> {
        (**self).encode(data)
    }
    fn encode_into(&self, data: &[u8], blocks: &mut [&mut [u8]]) -> Result<(), CodeError> {
        (**self).encode_into(data, blocks)
    }
    fn decode(&self, blocks: &[Option<&[u8]>]) -> Result<Vec<u8>, CodeError> {
        (**self).decode(blocks)
    }
    fn repair_plan(&self, target: usize) -> Result<RepairPlan, CodeError> {
        (**self).repair_plan(target)
    }
    fn reconstruct(&self, target: usize, sources: &[(usize, &[u8])]) -> Result<Vec<u8>, CodeError> {
        (**self).reconstruct(target, sources)
    }
    fn layout(&self) -> DataLayout {
        (**self).layout()
    }
    fn can_decode(&self, available: &[bool]) -> bool {
        (**self).can_decode(available)
    }
    fn storage_overhead(&self) -> f64 {
        (**self).storage_overhead()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A trivial 2-way replication "code" exercising the trait's defaults.
    struct Replica {
        len: usize,
    }

    impl ErasureCode for Replica {
        fn num_data_blocks(&self) -> usize {
            1
        }
        fn num_blocks(&self) -> usize {
            2
        }
        fn block_role(&self, block: usize) -> BlockRole {
            if block == 0 {
                BlockRole::Data
            } else {
                BlockRole::GlobalParity
            }
        }
        fn message_len(&self) -> usize {
            self.len
        }
        fn block_len(&self) -> usize {
            self.len
        }
        fn encode(&self, data: &[u8]) -> Result<Vec<Vec<u8>>, CodeError> {
            if data.len() != self.len {
                return Err(CodeError::InvalidDataLength {
                    got: data.len(),
                    multiple_of: self.len,
                });
            }
            Ok(vec![data.to_vec(), data.to_vec()])
        }
        fn decode(&self, blocks: &[Option<&[u8]>]) -> Result<Vec<u8>, CodeError> {
            if blocks.len() != 2 {
                return Err(CodeError::WrongBlockCount {
                    got: blocks.len(),
                    expected: 2,
                });
            }
            blocks
                .iter()
                .flatten()
                .next()
                .map(|b| b.to_vec())
                .ok_or(CodeError::Undecodable { available: vec![] })
        }
        fn repair_plan(&self, target: usize) -> Result<RepairPlan, CodeError> {
            Ok(RepairPlan::new(target, vec![1 - target]))
        }
        fn reconstruct(
            &self,
            _target: usize,
            sources: &[(usize, &[u8])],
        ) -> Result<Vec<u8>, CodeError> {
            Ok(sources[0].1.to_vec())
        }
        fn layout(&self) -> DataLayout {
            DataLayout::systematic(1, 2, 1)
        }
    }

    #[test]
    fn default_can_decode_uses_decode() {
        let c = Replica { len: 4 };
        assert!(c.can_decode(&[true, true]));
        assert!(c.can_decode(&[false, true]));
        assert!(!c.can_decode(&[false, false]));
        assert!(!c.can_decode(&[true])); // wrong arity
    }

    #[test]
    fn storage_overhead_default() {
        let c = Replica { len: 4 };
        assert_eq!(c.storage_overhead(), 2.0);
    }

    #[test]
    fn default_encode_into_fills_buffers() {
        let c = Replica { len: 4 };
        let (mut b0, mut b1) = ([0xAAu8; 4], [0u8; 4]);
        let mut bufs: Vec<&mut [u8]> = vec![&mut b0, &mut b1];
        c.encode_into(b"abcd", &mut bufs).unwrap();
        assert_eq!(&b0, b"abcd");
        assert_eq!(&b1, b"abcd");

        let mut lone = [0u8; 4];
        let mut wrong: Vec<&mut [u8]> = vec![&mut lone];
        assert!(matches!(
            c.encode_into(b"abcd", &mut wrong),
            Err(CodeError::WrongBlockCount {
                got: 1,
                expected: 2
            })
        ));

        let mut short = [0u8; 3];
        let mut long = [0u8; 4];
        let mut sized: Vec<&mut [u8]> = vec![&mut short, &mut long];
        assert!(matches!(
            c.encode_into(b"abcd", &mut sized),
            Err(CodeError::BlockSizeMismatch)
        ));
    }
}
