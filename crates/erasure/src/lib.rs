//! Shared vocabulary for the erasure codes in this workspace.
//!
//! Four code families implement the [`ErasureCode`] trait — Reed–Solomon
//! (`galloper-rs`), Pyramid (`galloper-pyramid`), Carousel
//! (`galloper-carousel`), and Galloper (`galloper`) — and are compared by
//! the benchmarks through these common types:
//!
//! * [`ErasureCode`] — encode / decode / reconstruct over byte blocks.
//! * [`RepairPlan`] — which blocks a reconstruction reads. The paper's
//!   disk-I/O accounting (Fig. 8b) is a direct function of these plans.
//! * [`DataLayout`] — where the *original* data lives inside the encoded
//!   blocks. Data-analytics parallelism (Fig. 2, Fig. 9, Fig. 10) is a
//!   direct function of this layout: a map task can only run on original
//!   bytes, so the layout decides how many tasks exist and how large each
//!   one is. This is the Rust analogue of the paper's custom Hadoop
//!   `FileInputFormat` (§VI).

// `deny` rather than `forbid`: the page-aligned buffer pool
// (`stream::aligned`) owns raw allocations and carries a written safety
// argument at every `#[allow(unsafe_code)]` site, matching the kernel
// dispatch policy in `galloper-gf`.
#![deny(unsafe_code)]
#![warn(missing_docs)]

mod code;
mod error;
mod layout;
mod linear;
mod object;
pub mod observe;
mod plan;
mod read;
pub mod reliability;
pub mod remap;
pub mod stream;

pub use code::{BlockRole, ErasureCode};
pub use error::CodeError;
pub use layout::DataLayout;
pub use linear::{AsLinearCode, ConstructionError, LinearCode};
pub use object::{EncodedObject, ObjectCodec, ObjectManifest};
pub use observe::Observed;
pub use plan::RepairPlan;
pub use read::ReadStats;
pub use stream::{
    AlignedBuf, AlignedPool, GroupSink, StreamError, StripeDecoder, StripeEncoder,
    StripeReconstructor,
};
