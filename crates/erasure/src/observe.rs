//! Observability wrapper for any [`ErasureCode`].
//!
//! [`Observed`] decorates a code with timing and counting against the
//! global [`galloper_obs`] registry: encode/decode/reconstruct latency
//! histograms per family (`erasure.<family>.encode_us`, …), call and
//! byte counters, and — the quantity the paper's Fig. 8b is built on —
//! symbols (blocks) read per repair plan
//! (`erasure.<family>.repair.symbols_read`).
//!
//! Metric lookups take the registry mutex once per operation; the
//! operations themselves are matrix–vector products over whole blocks,
//! so the overhead is noise. The hot inner loops are instrumented
//! separately (see `galloper_gf::slice`).

use galloper_obs::global;

use crate::{BlockRole, CodeError, DataLayout, ErasureCode, RepairPlan};

/// An [`ErasureCode`] decorated with metrics, named after its family.
#[derive(Debug, Clone)]
pub struct Observed<C> {
    inner: C,
    family: String,
}

impl<C: ErasureCode> Observed<C> {
    /// Wraps `inner`, labelling its metrics `erasure.<family>.*`.
    pub fn new(family: &str, inner: C) -> Observed<C> {
        Observed {
            inner,
            family: family.to_string(),
        }
    }

    /// The wrapped code.
    pub fn inner(&self) -> &C {
        &self.inner
    }

    /// Unwraps the code, discarding the label.
    pub fn into_inner(self) -> C {
        self.inner
    }

    fn metric(&self, suffix: &str) -> String {
        format!("erasure.{}.{suffix}", self.family)
    }
}

impl<C: ErasureCode> ErasureCode for Observed<C> {
    fn num_data_blocks(&self) -> usize {
        self.inner.num_data_blocks()
    }

    fn num_blocks(&self) -> usize {
        self.inner.num_blocks()
    }

    fn block_role(&self, block: usize) -> BlockRole {
        self.inner.block_role(block)
    }

    fn message_len(&self) -> usize {
        self.inner.message_len()
    }

    fn block_len(&self) -> usize {
        self.inner.block_len()
    }

    fn encode(&self, data: &[u8]) -> Result<Vec<Vec<u8>>, CodeError> {
        let _t = global().timer(&self.metric("encode_us"));
        global().counter(&self.metric("encode.calls")).inc();
        global()
            .counter(&self.metric("encode.bytes"))
            .add(data.len() as u64);
        self.inner.encode(data)
    }

    fn encode_into(&self, data: &[u8], blocks: &mut [&mut [u8]]) -> Result<(), CodeError> {
        let _t = global().timer(&self.metric("encode_us"));
        global().counter(&self.metric("encode.calls")).inc();
        global()
            .counter(&self.metric("encode.bytes"))
            .add(data.len() as u64);
        self.inner.encode_into(data, blocks)
    }

    fn decode(&self, blocks: &[Option<&[u8]>]) -> Result<Vec<u8>, CodeError> {
        let _t = global().timer(&self.metric("decode_us"));
        global().counter(&self.metric("decode.calls")).inc();
        let available: u64 = blocks.iter().flatten().map(|b| b.len() as u64).sum();
        global()
            .counter(&self.metric("decode.bytes_read"))
            .add(available);
        self.inner.decode(blocks)
    }

    fn repair_plan(&self, target: usize) -> Result<RepairPlan, CodeError> {
        let plan = self.inner.repair_plan(target)?;
        global().counter(&self.metric("repair.plans")).inc();
        global()
            .counter(&self.metric("repair.symbols_read"))
            .add(plan.sources().len() as u64);
        global()
            .counter(&self.metric("repair.bytes_planned"))
            .add(plan.sources().len() as u64 * self.inner.block_len() as u64);
        Ok(plan)
    }

    fn reconstruct(&self, target: usize, sources: &[(usize, &[u8])]) -> Result<Vec<u8>, CodeError> {
        let _t = global().timer(&self.metric("reconstruct_us"));
        global().counter(&self.metric("reconstruct.calls")).inc();
        let read: u64 = sources.iter().map(|(_, b)| b.len() as u64).sum();
        global()
            .counter(&self.metric("reconstruct.bytes_read"))
            .add(read);
        self.inner.reconstruct(target, sources)
    }

    fn layout(&self) -> DataLayout {
        self.inner.layout()
    }

    fn can_decode(&self, available: &[bool]) -> bool {
        self.inner.can_decode(available)
    }

    fn storage_overhead(&self) -> f64 {
        self.inner.storage_overhead()
    }
}

// Exercised in `tests/observe.rs`: the wrapper is tested against a real
// code family (Reed–Solomon), which within unit tests would be a
// different instantiation of this crate (dev-dependency cycle).
