//! Whole-object coding: arbitrary-length byte objects over fixed-message
//! codes.
//!
//! Every [`ErasureCode`](crate::ErasureCode) accepts messages of one exact
//! length (`k · N` stripes). Real systems store arbitrary-length files, so
//! — exactly like HDFS splitting a file into coding groups — an
//! [`ObjectCodec`] chops an object into messages, zero-pads the tail, and
//! keeps a tiny [`ObjectManifest`] recording the true length.

use crate::{CodeError, ErasureCode};

/// Metadata needed to reassemble an object from its coding groups.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObjectManifest {
    /// The object's exact byte length.
    pub object_len: usize,
    /// Number of coding groups (each a full codeword of the inner code).
    pub num_groups: usize,
}

/// One encoded object: `groups[g][b]` is block `b` of coding group `g`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EncodedObject {
    /// Encoded blocks per group.
    pub groups: Vec<Vec<Vec<u8>>>,
    /// Reassembly metadata.
    pub manifest: ObjectManifest,
}

/// Encodes and decodes arbitrary-length objects with a fixed-message
/// erasure code.
///
/// # Examples
///
/// ```
/// use galloper_erasure::{ErasureCode, ObjectCodec};
/// use galloper_rs::ReedSolomon;
///
/// let codec = ObjectCodec::new(ReedSolomon::new(4, 2, 16)?);
/// let object: Vec<u8> = (0..100u8).collect();     // not a multiple of 64
/// let encoded = codec.encode_object(&object)?;
/// assert_eq!(encoded.manifest.num_groups, 2);
///
/// // Lose a different pair of blocks in every group; still recoverable.
/// let availability: Vec<Vec<Option<&[u8]>>> = encoded
///     .groups
///     .iter()
///     .enumerate()
///     .map(|(g, blocks)| {
///         (0..blocks.len())
///             .map(|b| (b != g && b != g + 1).then(|| blocks[b].as_slice()))
///             .collect()
///     })
///     .collect();
/// let decoded = codec.decode_object(&availability, encoded.manifest)?;
/// assert_eq!(decoded, object);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct ObjectCodec<C> {
    code: C,
}

impl<C: ErasureCode> ObjectCodec<C> {
    /// Wraps an erasure code.
    pub fn new(code: C) -> Self {
        ObjectCodec { code }
    }

    /// The inner code.
    pub fn code(&self) -> &C {
        &self.code
    }

    /// Consumes the codec, returning the inner code.
    pub fn into_inner(self) -> C {
        self.code
    }

    /// Number of coding groups an object of `len` bytes occupies.
    pub fn groups_for(&self, len: usize) -> usize {
        len.div_ceil(self.code.message_len()).max(1)
    }

    /// Encodes an object of any length (the tail group is zero-padded).
    ///
    /// # Errors
    ///
    /// Propagates the inner code's errors (none expected: lengths are
    /// made exact here).
    pub fn encode_object(&self, data: &[u8]) -> Result<EncodedObject, CodeError> {
        let msg = self.code.message_len();
        let num_groups = self.groups_for(data.len());
        let mut groups = Vec::with_capacity(num_groups);
        let mut padded = vec![0u8; msg];
        for g in 0..num_groups {
            let start = g * msg;
            let end = (start + msg).min(data.len());
            let chunk = data.get(start..end).unwrap_or(&[]);
            let blocks = if chunk.len() == msg {
                self.code.encode(chunk)?
            } else {
                padded[..chunk.len()].copy_from_slice(chunk);
                padded[chunk.len()..].fill(0);
                self.code.encode(&padded)?
            };
            groups.push(blocks);
        }
        Ok(EncodedObject {
            groups,
            manifest: ObjectManifest {
                object_len: data.len(),
                num_groups,
            },
        })
    }

    /// Decodes an object from per-group block availability, truncating the
    /// padding away.
    ///
    /// # Errors
    ///
    /// * [`CodeError::WrongBlockCount`] if `groups.len()` disagrees with
    ///   the manifest.
    /// * Any inner decode error (e.g. an unrecoverable group).
    pub fn decode_object(
        &self,
        groups: &[Vec<Option<&[u8]>>],
        manifest: ObjectManifest,
    ) -> Result<Vec<u8>, CodeError> {
        if groups.len() != manifest.num_groups {
            return Err(CodeError::WrongBlockCount {
                got: groups.len(),
                expected: manifest.num_groups,
            });
        }
        let mut out = Vec::with_capacity(manifest.num_groups * self.code.message_len());
        for group in groups {
            out.extend_from_slice(&self.code.decode(group)?);
        }
        out.truncate(manifest.object_len);
        Ok(out)
    }

    /// Extracts an object's bytes directly from fully available groups
    /// using the layout (no decoding arithmetic), truncating padding.
    ///
    /// # Panics
    ///
    /// Panics if any group is missing blocks (use
    /// [`ObjectCodec::decode_object`] for degraded reads).
    pub fn extract_object(&self, groups: &[Vec<Vec<u8>>], manifest: ObjectManifest) -> Vec<u8> {
        let layout = self.code.layout();
        let mut out = Vec::with_capacity(manifest.num_groups * self.code.message_len());
        for group in groups {
            let refs: Vec<&[u8]> = group.iter().map(Vec::as_slice).collect();
            out.extend_from_slice(&layout.extract_data(&refs));
        }
        out.truncate(manifest.object_len);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BlockRole, DataLayout, LinearCode, RepairPlan};
    use galloper_linalg::Matrix;

    fn xor_code(stripe: usize) -> LinearCode {
        let generator = Matrix::from_rows(&[vec![1, 0], vec![0, 1], vec![1, 1]]);
        LinearCode::new(
            generator,
            2,
            vec![BlockRole::Data, BlockRole::Data, BlockRole::GlobalParity],
            DataLayout::systematic(2, 3, 1),
            vec![
                RepairPlan::new(0, vec![1, 2]),
                RepairPlan::new(1, vec![0, 2]),
                RepairPlan::new(2, vec![0, 1]),
            ],
            stripe,
        )
        .unwrap()
    }

    #[test]
    fn roundtrip_various_lengths() {
        let codec = ObjectCodec::new(xor_code(4)); // message_len = 8
        for len in [0usize, 1, 7, 8, 9, 16, 17, 100] {
            let data: Vec<u8> = (0..len).map(|i| (i * 7 + 1) as u8).collect();
            let enc = codec.encode_object(&data).unwrap();
            assert_eq!(enc.manifest.object_len, len);
            assert_eq!(enc.manifest.num_groups, len.div_ceil(8).max(1));
            let avail: Vec<Vec<Option<&[u8]>>> = enc
                .groups
                .iter()
                .map(|g| g.iter().map(|b| Some(b.as_slice())).collect())
                .collect();
            assert_eq!(
                codec.decode_object(&avail, enc.manifest).unwrap(),
                data,
                "len {len}"
            );
        }
    }

    #[test]
    fn degraded_read_per_group() {
        let codec = ObjectCodec::new(xor_code(4));
        let data: Vec<u8> = (0..24).map(|i| i as u8 + 1).collect(); // 3 groups
        let enc = codec.encode_object(&data).unwrap();
        // Erase a different block in each group.
        let avail: Vec<Vec<Option<&[u8]>>> = enc
            .groups
            .iter()
            .enumerate()
            .map(|(g, blocks)| {
                (0..3)
                    .map(|b| (b != g % 3).then(|| blocks[b].as_slice()))
                    .collect()
            })
            .collect();
        assert_eq!(codec.decode_object(&avail, enc.manifest).unwrap(), data);
    }

    #[test]
    fn extract_object_matches_decode() {
        let codec = ObjectCodec::new(xor_code(2));
        let data: Vec<u8> = (0..10).map(|i| 200 - i as u8).collect();
        let enc = codec.encode_object(&data).unwrap();
        assert_eq!(codec.extract_object(&enc.groups, enc.manifest), data);
    }

    #[test]
    fn manifest_mismatch_is_rejected() {
        let codec = ObjectCodec::new(xor_code(2));
        let enc = codec.encode_object(&[1, 2, 3]).unwrap();
        let err = codec.decode_object(&[], enc.manifest).unwrap_err();
        assert!(matches!(err, CodeError::WrongBlockCount { .. }));
    }

    #[test]
    fn accessors() {
        let codec = ObjectCodec::new(xor_code(2));
        assert_eq!(codec.code().num_blocks(), 3);
        assert_eq!(codec.groups_for(0), 1);
        assert_eq!(codec.groups_for(9), 3);
        let _inner = codec.into_inner();
    }
}
