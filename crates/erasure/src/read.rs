//! Degraded range reads: serving byte ranges of the original data from
//! partially available blocks with minimal I/O.
//!
//! This is the read-path counterpart of the paper's repair story. A
//! healthy read of original bytes touches only the stripes that hold them
//! (possible for *any* range precisely because the layout knows where
//! original data lives — the `FileInputFormat` idea). When the home block
//! of a stripe is down, the stripe is recovered through the block's
//! repair matrix, reading only the *stripes* (not whole blocks) with
//! non-zero repair coefficients — for a Galloper data stripe that is
//! `k/l` stripes instead of `k/l` blocks. Only when a repair source is
//! itself unavailable does the read fall back to a full decode.

use crate::{CodeError, ErasureCode, LinearCode};
use galloper_linalg::Matrix;

/// Accounting for one range read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReadStats {
    /// Number of distinct stripes fetched from surviving blocks.
    pub stripes_read: usize,
    /// Total bytes fetched.
    pub bytes_read: usize,
    /// Whether any requested stripe needed recovery arithmetic.
    pub degraded: bool,
    /// Whether the read had to fall back to a full decode (a repair
    /// source was unavailable too).
    pub full_decode: bool,
}

impl LinearCode {
    /// Reads original bytes `[offset, offset + len)` from the available
    /// blocks, returning the bytes and the I/O accounting.
    ///
    /// # Errors
    ///
    /// * [`CodeError::WrongBlockCount`] / [`CodeError::BlockSizeMismatch`]
    ///   on malformed inputs.
    /// * [`CodeError::InvalidDataLength`] if the range exceeds the
    ///   message.
    /// * [`CodeError::Undecodable`] if a stripe cannot be recovered from
    ///   the available blocks at all.
    pub fn read_range(
        &self,
        offset: usize,
        len: usize,
        blocks: &[Option<&[u8]>],
    ) -> Result<(Vec<u8>, ReadStats), CodeError> {
        if blocks.len() != self.num_blocks() {
            return Err(CodeError::WrongBlockCount {
                got: blocks.len(),
                expected: self.num_blocks(),
            });
        }
        for b in blocks.iter().flatten() {
            if b.len() != self.block_len() {
                return Err(CodeError::BlockSizeMismatch);
            }
        }
        // `offset + len` must not wrap: `read_range(usize::MAX, 2, ..)`
        // would otherwise pass validation and panic deep in slicing.
        let end = offset
            .checked_add(len)
            .ok_or(CodeError::InvalidDataLength {
                got: usize::MAX,
                multiple_of: self.message_len(),
            })?;
        if end > self.message_len() {
            return Err(CodeError::InvalidDataLength {
                got: end,
                multiple_of: self.message_len(),
            });
        }
        if len == 0 {
            return Ok((
                Vec::new(),
                ReadStats {
                    stripes_read: 0,
                    bytes_read: 0,
                    degraded: false,
                    full_decode: false,
                },
            ));
        }

        let ss = self.stripe_size();
        let layout = self.layout();
        let first = offset / ss;
        let last = (offset + len - 1) / ss;

        let mut assembled = Vec::with_capacity((last - first + 1) * ss);
        let mut touched: std::collections::HashSet<(usize, usize)> =
            std::collections::HashSet::new();
        let mut degraded = false;
        // A lost block is recovered stripe by stripe, and a range can
        // cover every stripe of that block — fetch the (cloned) repair
        // plan and matrix once per lost home block, not once per stripe.
        let mut recovery_cache: std::collections::HashMap<usize, (crate::RepairPlan, &Matrix)> =
            std::collections::HashMap::new();

        for s in first..=last {
            let (home, pos) = layout
                .locate(s)
                .expect("every original stripe has a home position");
            if let Some(block) = blocks[home] {
                touched.insert((home, pos));
                assembled.extend_from_slice(&block[pos * ss..(pos + 1) * ss]);
                continue;
            }
            degraded = true;
            // Recover via the home block's repair matrix: stored stripe
            // `pos` = repair_matrix(home).row(pos) · (source stripes).
            let (plan, rm) = match recovery_cache.entry(home) {
                std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
                std::collections::hash_map::Entry::Vacant(v) => {
                    v.insert((self.repair_plan(home)?, self.repair_matrix(home)))
                }
            };
            let sources = plan.sources();
            if sources.iter().any(|&src| blocks[src].is_none()) {
                // A source is down as well: fall back to full decode.
                return self.read_range_via_decode(offset, len, blocks, touched.len());
            }
            let row = rm.row(pos);
            let big_n = self.stripes_per_block();
            let mut stripe = vec![0u8; ss];
            for (j, &coeff) in row.iter().enumerate() {
                if coeff != 0 {
                    let src_block = sources[j / big_n];
                    let src_pos = j % big_n;
                    touched.insert((src_block, src_pos));
                    let data = blocks[src_block].expect("checked available");
                    galloper_gf::slice::mul_slice_add(
                        coeff,
                        &data[src_pos * ss..(src_pos + 1) * ss],
                        &mut stripe,
                    );
                }
            }
            assembled.extend_from_slice(&stripe);
        }

        let start = offset - first * ss;
        let out = assembled[start..start + len].to_vec();
        Ok((
            out,
            ReadStats {
                stripes_read: touched.len(),
                bytes_read: touched.len() * ss,
                degraded,
                full_decode: false,
            },
        ))
    }

    /// Worst-case path: full decode, then slice.
    fn read_range_via_decode(
        &self,
        offset: usize,
        len: usize,
        blocks: &[Option<&[u8]>],
        already_read: usize,
    ) -> Result<(Vec<u8>, ReadStats), CodeError> {
        let decoded = self.decode(blocks)?;
        let available_blocks = blocks.iter().flatten().count();
        // Conservative accounting: a full decode reads kN stripes from
        // survivors (clamped to what actually survives, plus whatever was
        // fetched before the fallback). Deriving bytes from the same
        // stripe count keeps `bytes_read == stripes_read * stripe_size()`.
        let stripes_read = already_read
            + (self.num_data_blocks() * self.stripes_per_block())
                .min(available_blocks * self.stripes_per_block());
        Ok((
            decoded[offset..offset + len].to_vec(),
            ReadStats {
                stripes_read,
                bytes_read: stripes_read * self.stripe_size(),
                degraded: true,
                full_decode: true,
            },
        ))
    }
}

#[cfg(test)]
mod tests {
    use crate::{BlockRole, DataLayout, ErasureCode, LinearCode, RepairPlan};
    use galloper_linalg::Matrix;

    /// The familiar (2,1) XOR code with 2 stripes per block so ranges can
    /// straddle stripes: blocks [a, b, a+b], each 2 stripes of 4 bytes.
    fn xor_code() -> LinearCode {
        let g = Matrix::from_rows(&[vec![1, 0], vec![0, 1], vec![1, 1]]).kron_identity(2);
        LinearCode::new(
            g,
            2,
            vec![BlockRole::Data, BlockRole::Data, BlockRole::GlobalParity],
            DataLayout::systematic(2, 3, 2),
            vec![
                RepairPlan::new(0, vec![1, 2]),
                RepairPlan::new(1, vec![0, 2]),
                RepairPlan::new(2, vec![0, 1]),
            ],
            4,
        )
        .unwrap()
    }

    fn encode_sample(code: &LinearCode) -> (Vec<u8>, Vec<Vec<u8>>) {
        let data: Vec<u8> = (0..code.message_len())
            .map(|i| (i * 11 + 3) as u8)
            .collect();
        let blocks = code.encode(&data).unwrap();
        (data, blocks)
    }

    #[test]
    fn healthy_range_reads_touch_only_needed_stripes() {
        let code = xor_code();
        let (data, blocks) = encode_sample(&code);
        let avail: Vec<Option<&[u8]>> = blocks.iter().map(|b| Some(b.as_slice())).collect();
        // Bytes 2..6 straddle stripes 0 and 1 (both in block 0).
        let (out, stats) = code.read_range(2, 4, &avail).unwrap();
        assert_eq!(out, &data[2..6]);
        assert!(!stats.degraded);
        assert_eq!(stats.stripes_read, 2);
        assert_eq!(stats.bytes_read, 8);
    }

    #[test]
    fn degraded_read_uses_repair_stripes() {
        let code = xor_code();
        let (data, blocks) = encode_sample(&code);
        // Lose block 0; read its first stripe (bytes 0..4).
        let avail: Vec<Option<&[u8]>> =
            vec![None, Some(blocks[1].as_slice()), Some(blocks[2].as_slice())];
        let (out, stats) = code.read_range(0, 4, &avail).unwrap();
        assert_eq!(out, &data[0..4]);
        assert!(stats.degraded);
        assert!(!stats.full_decode);
        // Recovery of one stripe reads one stripe from each of 2 sources.
        assert_eq!(stats.stripes_read, 2);
        assert_eq!(stats.bytes_read, 8);
    }

    #[test]
    fn fallback_to_full_decode_when_source_down_too() {
        // For the XOR code two losses are fatal; use a (2,2) RS-like code
        // instead: generator [I; C] with 2 parities, so two losses decode.
        let g = Matrix::identity(2)
            .vstack(&Matrix::cauchy(2, 2))
            .kron_identity(1);
        let code = LinearCode::new(
            g,
            2,
            vec![
                BlockRole::Data,
                BlockRole::Data,
                BlockRole::GlobalParity,
                BlockRole::GlobalParity,
            ],
            DataLayout::systematic(2, 4, 1),
            (0..4)
                .map(|b| RepairPlan::new(b, (0..4).filter(|&x| x != b).take(2).collect()))
                .collect(),
            8,
        )
        .unwrap();
        let data: Vec<u8> = (0..16).map(|i| i as u8 * 3).collect();
        let blocks = code.encode(&data).unwrap();
        // Lose blocks 0 and 1: block 0's repair plan reads block 1 → must
        // fall back to decoding from the two parities.
        let avail: Vec<Option<&[u8]>> = vec![
            None,
            None,
            Some(blocks[2].as_slice()),
            Some(blocks[3].as_slice()),
        ];
        let (out, stats) = code.read_range(0, 8, &avail).unwrap();
        assert_eq!(out, &data[0..8]);
        assert!(stats.full_decode);
        // The two stats must stay consistent even when fewer than k
        // blocks' worth of survivors exist.
        assert_eq!(stats.bytes_read, stats.stripes_read * code.stripe_size());
        assert_eq!(stats.stripes_read, 2 * code.stripes_per_block());
    }

    #[test]
    fn unrecoverable_range_errors() {
        let code = xor_code();
        let (_, blocks) = encode_sample(&code);
        let avail: Vec<Option<&[u8]>> = vec![None, None, Some(blocks[2].as_slice())];
        assert!(code.read_range(0, 4, &avail).is_err());
    }

    #[test]
    fn empty_and_oob_ranges() {
        let code = xor_code();
        let (_, blocks) = encode_sample(&code);
        let avail: Vec<Option<&[u8]>> = blocks.iter().map(|b| Some(b.as_slice())).collect();
        let (out, stats) = code.read_range(5, 0, &avail).unwrap();
        assert!(out.is_empty());
        assert_eq!(stats.bytes_read, 0);
        assert!(code.read_range(10, 10, &avail).is_err(), "past the message");
        // Ranges whose end wraps around usize must be rejected, not
        // validated via the wrapped sum.
        assert!(matches!(
            code.read_range(usize::MAX, 2, &avail),
            Err(crate::CodeError::InvalidDataLength { .. })
        ));
        assert!(matches!(
            code.read_range(2, usize::MAX, &avail),
            Err(crate::CodeError::InvalidDataLength { .. })
        ));
    }

    #[test]
    fn every_offset_and_length_roundtrips() {
        let code = xor_code();
        let (data, blocks) = encode_sample(&code);
        let avail: Vec<Option<&[u8]>> = blocks.iter().map(|b| Some(b.as_slice())).collect();
        // Also in degraded mode with block 1 down.
        let degraded: Vec<Option<&[u8]>> =
            vec![Some(blocks[0].as_slice()), None, Some(blocks[2].as_slice())];
        for offset in 0..data.len() {
            for len in 0..=(data.len() - offset) {
                let (a, _) = code.read_range(offset, len, &avail).unwrap();
                assert_eq!(a, &data[offset..offset + len], "healthy {offset}+{len}");
                let (b, _) = code.read_range(offset, len, &degraded).unwrap();
                assert_eq!(b, &data[offset..offset + len], "degraded {offset}+{len}");
            }
        }
    }
}
