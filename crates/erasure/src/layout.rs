//! Data layouts: where the original data lives inside encoded blocks.

/// Describes, for an encoded object, which stripes of which blocks hold
/// *original* (systematic) data and which original stripe each one is.
///
/// Conventional systematic codes put all original data in the k data
/// blocks; Carousel and Galloper codes spread it across all blocks. A
/// `DataLayout` captures either shape and is what a compute framework
/// (here, `galloper-simmr`) consumes to schedule tasks with data locality:
/// the number of original bytes in a block is the amount of work a
/// map task co-located with that block can do without network transfer.
///
/// Stripes are indexed *as stored* (after any rotation); original stripes
/// are indexed in logical file order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DataLayout {
    /// `assignments[block][pos] = original stripe index` for each stored
    /// data-stripe position `pos` (data stripes are the leading stripes of
    /// every block).
    assignments: Vec<Vec<usize>>,
    /// Stripes per block (N in the paper).
    stripes_per_block: usize,
}

impl DataLayout {
    /// Creates a layout from explicit per-block assignments.
    ///
    /// `assignments[b]` lists, in stored order, the original stripe index
    /// held at each leading position of block `b`.
    ///
    /// # Panics
    ///
    /// Panics if any block claims more stripes than `stripes_per_block`,
    /// if the original stripe indices are not exactly `0..total` each used
    /// once, or if `assignments` is empty.
    pub fn new(assignments: Vec<Vec<usize>>, stripes_per_block: usize) -> Self {
        assert!(!assignments.is_empty(), "layout needs at least one block");
        assert!(stripes_per_block > 0, "stripes_per_block must be non-zero");
        let mut all: Vec<usize> = assignments.iter().flatten().copied().collect();
        for a in &assignments {
            assert!(
                a.len() <= stripes_per_block,
                "a block cannot hold more data stripes than it has stripes"
            );
        }
        all.sort_unstable();
        for (i, &v) in all.iter().enumerate() {
            assert_eq!(
                v,
                i,
                "original stripes must be 0..{} exactly once",
                all.len()
            );
        }
        DataLayout {
            assignments,
            stripes_per_block,
        }
    }

    /// The layout of a conventional systematic code: blocks `0..k` hold
    /// the original data in order, the remaining blocks hold only parity.
    pub fn systematic(k: usize, num_blocks: usize, stripes_per_block: usize) -> Self {
        assert!(k > 0 && k <= num_blocks, "invalid k for systematic layout");
        let mut assignments = Vec::with_capacity(num_blocks);
        for b in 0..num_blocks {
            if b < k {
                assignments.push(
                    (0..stripes_per_block)
                        .map(|s| b * stripes_per_block + s)
                        .collect(),
                );
            } else {
                assignments.push(Vec::new());
            }
        }
        DataLayout::new(assignments, stripes_per_block)
    }

    /// Number of blocks.
    pub fn num_blocks(&self) -> usize {
        self.assignments.len()
    }

    /// Stripes per block (the paper's N).
    pub fn stripes_per_block(&self) -> usize {
        self.stripes_per_block
    }

    /// Total number of original stripes (k · N).
    pub fn total_data_stripes(&self) -> usize {
        self.assignments.iter().map(Vec::len).sum()
    }

    /// Number of original-data stripes stored in `block`.
    ///
    /// # Panics
    ///
    /// Panics if `block` is out of range.
    pub fn data_stripes(&self, block: usize) -> usize {
        self.assignments[block].len()
    }

    /// The original stripe indices stored in `block`, in stored order.
    ///
    /// # Panics
    ///
    /// Panics if `block` is out of range.
    pub fn block_assignment(&self, block: usize) -> &[usize] {
        &self.assignments[block]
    }

    /// Fraction of `block` holding original data (the paper's weight
    /// `w_i`, as realized after rationalization).
    ///
    /// # Panics
    ///
    /// Panics if `block` is out of range.
    pub fn data_fraction(&self, block: usize) -> f64 {
        self.assignments[block].len() as f64 / self.stripes_per_block as f64
    }

    /// Bytes of original data in `block`, given the block size in bytes.
    ///
    /// # Panics
    ///
    /// Panics if `block` is out of range or `block_size` is not a multiple
    /// of the stripe count.
    pub fn data_bytes(&self, block: usize, block_size: usize) -> usize {
        assert_eq!(
            block_size % self.stripes_per_block,
            0,
            "block size must be a whole number of stripes"
        );
        self.data_stripes(block) * (block_size / self.stripes_per_block)
    }

    /// Locates original stripe `index`: returns `(block, position)`.
    ///
    /// Linear scan; intended for tests and extraction, not hot paths.
    pub fn locate(&self, index: usize) -> Option<(usize, usize)> {
        for (b, a) in self.assignments.iter().enumerate() {
            if let Some(pos) = a.iter().position(|&v| v == index) {
                return Some((b, pos));
            }
        }
        None
    }

    /// Extracts the original data directly from encoded blocks without any
    /// decoding arithmetic — the operation a parallelism-aware reader (the
    /// paper's modified `FileInputFormat`) performs.
    ///
    /// # Panics
    ///
    /// Panics if blocks are missing, have unequal sizes, or sizes not
    /// divisible by the stripe count.
    pub fn extract_data(&self, blocks: &[&[u8]]) -> Vec<u8> {
        assert_eq!(blocks.len(), self.num_blocks(), "need every block");
        let block_size = blocks[0].len();
        assert!(
            blocks.iter().all(|b| b.len() == block_size),
            "unequal blocks"
        );
        assert_eq!(block_size % self.stripes_per_block, 0);
        let stripe_size = block_size / self.stripes_per_block;
        let total = self.total_data_stripes();
        let mut out = vec![0u8; total * stripe_size];
        for (b, a) in self.assignments.iter().enumerate() {
            for (pos, &orig) in a.iter().enumerate() {
                let src = &blocks[b][pos * stripe_size..(pos + 1) * stripe_size];
                out[orig * stripe_size..(orig + 1) * stripe_size].copy_from_slice(src);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn systematic_layout_shape() {
        let l = DataLayout::systematic(4, 6, 1);
        assert_eq!(l.num_blocks(), 6);
        assert_eq!(l.total_data_stripes(), 4);
        assert_eq!(l.data_stripes(0), 1);
        assert_eq!(l.data_stripes(4), 0);
        assert_eq!(l.data_fraction(0), 1.0);
        assert_eq!(l.data_fraction(5), 0.0);
    }

    #[test]
    fn spread_layout() {
        // The paper's Fig. 3: k=4, g=1, N=7, weights (6,6,6,6,4)/7.
        let mut assignments = Vec::new();
        let mut next = 0;
        for count in [6usize, 6, 6, 6, 4] {
            assignments.push((next..next + count).collect::<Vec<_>>());
            next += count;
        }
        let l = DataLayout::new(assignments, 7);
        assert_eq!(l.total_data_stripes(), 28);
        assert!((l.data_fraction(4) - 4.0 / 7.0).abs() < 1e-12);
        assert_eq!(l.data_bytes(0, 70), 60);
        assert_eq!(l.locate(27), Some((4, 3)));
        assert_eq!(l.locate(99), None);
    }

    #[test]
    fn extract_data_roundtrip() {
        // Two blocks, two stripes each, data interleaved: block 1 holds
        // stripe 0, block 0 holds stripe 1.
        let l = DataLayout::new(vec![vec![1], vec![0]], 2);
        let b0 = [10u8, 11, 0, 0]; // first stripe holds original stripe 1
        let b1 = [20u8, 21, 0, 0]; // first stripe holds original stripe 0
        let data = l.extract_data(&[&b0, &b1]);
        assert_eq!(data, vec![20, 21, 10, 11]);
    }

    #[test]
    #[should_panic(expected = "exactly once")]
    fn duplicate_assignment_panics() {
        let _ = DataLayout::new(vec![vec![0], vec![0]], 1);
    }

    #[test]
    #[should_panic(expected = "more data stripes")]
    fn overfull_block_panics() {
        let _ = DataLayout::new(vec![vec![0, 1]], 1);
    }
}
