//! Repair plans: the disk-I/O contract of a reconstruction.

/// The read set needed to reconstruct one lost block.
///
/// A plan lists the *whole blocks* that must be fetched from surviving
/// servers. Locally repairable codes win on reconstruction precisely
/// because their plans are short: a (4, 2, 1) Pyramid or Galloper code
/// repairs a data block from 2 sources where a (4, 2) Reed–Solomon code
/// needs 4 (paper Fig. 1 and Fig. 8).
///
/// # Examples
///
/// ```
/// use galloper_erasure::RepairPlan;
///
/// let plan = RepairPlan::new(0, vec![1, 2]);
/// assert_eq!(plan.fan_in(), 2);
/// assert_eq!(plan.disk_io_bytes(45 * 1024 * 1024), 90 * 1024 * 1024);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct RepairPlan {
    target: usize,
    sources: Vec<usize>,
}

impl RepairPlan {
    /// Creates a plan reconstructing `target` from `sources`.
    ///
    /// # Panics
    ///
    /// Panics if `sources` contains `target` or duplicate entries — a plan
    /// that reads the lost block, or the same block twice, is nonsense.
    pub fn new(target: usize, sources: Vec<usize>) -> Self {
        assert!(
            !sources.contains(&target),
            "a repair plan cannot read the block it reconstructs"
        );
        let mut seen = sources.clone();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), sources.len(), "repair sources must be distinct");
        RepairPlan { target, sources }
    }

    /// The block being reconstructed.
    #[inline]
    pub fn target(&self) -> usize {
        self.target
    }

    /// The blocks that must be read, in the order `reconstruct` expects.
    #[inline]
    pub fn sources(&self) -> &[usize] {
        &self.sources
    }

    /// Number of blocks read (the *locality* of the target under this
    /// code, in the paper's terminology).
    #[inline]
    pub fn fan_in(&self) -> usize {
        self.sources.len()
    }

    /// Total bytes read from surviving disks to execute this plan.
    #[inline]
    pub fn disk_io_bytes(&self, block_size: u64) -> u64 {
        self.sources.len() as u64 * block_size
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let p = RepairPlan::new(3, vec![0, 1, 2]);
        assert_eq!(p.target(), 3);
        assert_eq!(p.sources(), &[0, 1, 2]);
        assert_eq!(p.fan_in(), 3);
        assert_eq!(p.disk_io_bytes(100), 300);
    }

    #[test]
    #[should_panic(expected = "cannot read the block")]
    fn target_in_sources_panics() {
        let _ = RepairPlan::new(1, vec![0, 1]);
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn duplicate_sources_panic() {
        let _ = RepairPlan::new(9, vec![0, 0]);
    }

    #[test]
    fn empty_plan_is_allowed() {
        // Degenerate but legal: a code with a replica could repair from one
        // source; zero sources would mean the block is constant. The type
        // permits it and reports zero I/O.
        let p = RepairPlan::new(0, vec![]);
        assert_eq!(p.disk_io_bytes(1 << 20), 0);
    }
}
