//! Reliability analytics: exact data-loss probability and expected repair
//! cost under independent server failures.
//!
//! Locally repairable codes trade a little storage for much cheaper
//! repair at (slightly) different loss profiles — the three-way tension
//! the paper's related work circles around. This module computes the
//! numbers exactly for any [`ErasureCode`] by enumerating failure
//! patterns against [`ErasureCode::can_decode`]:
//!
//! * [`data_loss_probability`] — P(some data is unrecoverable) when each
//!   block's server fails independently with probability `p`;
//! * [`expected_repair_io`] — mean blocks read to repair one failed
//!   block (uniform over blocks);
//! * [`tolerance_profile`] — per failure count `f`, the fraction of
//!   `f`-subsets that remain decodable (the paper's "can tolerate more
//!   than g+1 failures but not all combinations", §III-B, quantified).

use crate::ErasureCode;

/// Largest block count accepted by the exact enumerations (2ⁿ patterns).
pub const MAX_EXACT_BLOCKS: usize = 20;

/// Exact probability that the original data is unrecoverable when each
/// block fails independently with probability `p`.
///
/// # Panics
///
/// Panics if `p` is outside `[0, 1]` or the code has more than
/// [`MAX_EXACT_BLOCKS`] blocks (the enumeration is exponential).
pub fn data_loss_probability(code: &dyn ErasureCode, p: f64) -> f64 {
    assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
    let n = code.num_blocks();
    assert!(
        n <= MAX_EXACT_BLOCKS,
        "exact enumeration is limited to {MAX_EXACT_BLOCKS} blocks"
    );
    let profile = tolerance_profile(code);
    let mut total = 0.0;
    for (f, &(undecodable, patterns)) in profile.iter().enumerate() {
        if undecodable == 0 {
            continue;
        }
        // Each f-failure pattern has probability p^f (1-p)^(n-f); the
        // profile tells us how many of the C(n, f) patterns lose data.
        let _ = patterns;
        total += undecodable as f64 * p.powi(f as i32) * (1.0 - p).powi((n - f) as i32);
    }
    total
}

/// For each failure count `f ∈ 0..=n`, returns
/// `(undecodable_patterns, total_patterns)` — how many ways to lose `f`
/// blocks destroy data.
///
/// # Panics
///
/// Panics if the code has more than [`MAX_EXACT_BLOCKS`] blocks.
pub fn tolerance_profile(code: &dyn ErasureCode) -> Vec<(u64, u64)> {
    let n = code.num_blocks();
    assert!(
        n <= MAX_EXACT_BLOCKS,
        "exact enumeration is limited to {MAX_EXACT_BLOCKS} blocks"
    );
    let mut profile = vec![(0u64, 0u64); n + 1];
    for mask in 0u32..(1 << n) {
        let failed = mask.count_ones() as usize;
        let available: Vec<bool> = (0..n).map(|b| mask & (1 << b) == 0).collect();
        profile[failed].1 += 1;
        if !code.can_decode(&available) {
            profile[failed].0 += 1;
        }
    }
    profile
}

/// The largest `f` such that *every* `f`-failure pattern is decodable
/// (the code's guaranteed failure tolerance).
///
/// # Panics
///
/// Panics if the code has more than [`MAX_EXACT_BLOCKS`] blocks.
pub fn guaranteed_tolerance(code: &dyn ErasureCode) -> usize {
    tolerance_profile(code)
        .iter()
        .take_while(|&&(undecodable, _)| undecodable == 0)
        .count()
        .saturating_sub(1)
}

/// Mean number of blocks read to repair one failed block, uniform over
/// which block failed — the per-incident disk-I/O burden in units of
/// block reads.
pub fn expected_repair_io(code: &dyn ErasureCode) -> f64 {
    let n = code.num_blocks();
    let total: usize = (0..n)
        .map(|b| code.repair_plan(b).expect("valid block").fan_in())
        .sum();
    total as f64 / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BlockRole, DataLayout, LinearCode, RepairPlan};
    use galloper_linalg::Matrix;

    fn rs42ish() -> LinearCode {
        // (2, 2) MDS mini-code: any 2 of 4 blocks decode.
        let g = Matrix::identity(2).vstack(&Matrix::cauchy(2, 2));
        LinearCode::new(
            g,
            2,
            vec![
                BlockRole::Data,
                BlockRole::Data,
                BlockRole::GlobalParity,
                BlockRole::GlobalParity,
            ],
            DataLayout::systematic(2, 4, 1),
            (0..4)
                .map(|b| RepairPlan::new(b, (0..4).filter(|&x| x != b).take(2).collect()))
                .collect(),
            1,
        )
        .unwrap()
    }

    #[test]
    fn mds_loss_probability_is_binomial_tail() {
        // For a (2, 2) MDS code, data loss ⟺ ≥ 3 of 4 blocks fail.
        let code = rs42ish();
        for p in [0.01f64, 0.1, 0.5] {
            let q = 1.0 - p;
            let expected = 4.0 * p.powi(3) * q + p.powi(4);
            let got = data_loss_probability(&code, p);
            assert!((got - expected).abs() < 1e-12, "p={p}: {got} vs {expected}");
        }
        assert_eq!(data_loss_probability(&code, 0.0), 0.0);
        assert_eq!(data_loss_probability(&code, 1.0), 1.0);
    }

    #[test]
    fn tolerance_profile_of_mds() {
        let code = rs42ish();
        let profile = tolerance_profile(&code);
        assert_eq!(profile[0], (0, 1));
        assert_eq!(profile[1], (0, 4));
        assert_eq!(profile[2], (0, 6));
        assert_eq!(profile[3], (4, 4));
        assert_eq!(profile[4], (1, 1));
        assert_eq!(guaranteed_tolerance(&code), 2);
    }

    #[test]
    fn expected_repair_io_averages_fan_in() {
        let code = rs42ish();
        assert_eq!(expected_repair_io(&code), 2.0);
    }
}
