//! Page-aligned, size-classed buffer pooling for the zero-copy pipeline.
//!
//! [`AlignedBuf`] is an owned byte buffer whose storage always starts on
//! a page boundary ([`PAGE_ALIGN`]) and whose capacity is a power-of-two
//! size class, so the same buffer can serve any logical length up to its
//! class. Page alignment is what lets the same buffers flow from file
//! ingest through the GF kernels to vectored writes without re-copying:
//! the SIMD kernels never straddle a cache line at a buffer edge, and
//! aligned buffers keep the door open for `O_DIRECT`-style I/O later.
//!
//! [`AlignedPool`] recycles these buffers through per-class free lists.
//! Because classes are shared (a 4 KiB message and a 4 KiB block draw
//! from the same list), steady-state streaming performs no allocation at
//! all, and the pool's residency is bounded by the maximum number of
//! buffers simultaneously checked out — not by how many distinct sizes
//! pass through it.
//!
//! This is the one module in `galloper-erasure` that uses `unsafe`
//! (crate policy: `deny(unsafe_code)` with module-scoped allows and a
//! written safety argument at every site). The invariants are:
//!
//! 1. `ptr` is non-null and was returned by `alloc::alloc_zeroed` with
//!    `Layout::from_size_align(cap, PAGE_ALIGN)`; `Drop` deallocates
//!    with the *same* layout. An `AlignedBuf` is never constructed from
//!    foreign memory. (This is also why the type exists at all: handing
//!    the pointer to `Vec::from_raw_parts` would be undefined behaviour,
//!    because `Vec`'s destructor assumes the allocation used `Vec`'s own
//!    layout, whose alignment is 1 for `u8`.)
//! 2. All `cap` bytes are initialized from the moment of allocation
//!    (`alloc_zeroed`), so any `len <= cap` yields a valid `&[u8]`.
//! 3. `len <= cap` always ([`AlignedBuf::set_len`] checks it).

use core::fmt;
use std::alloc::{alloc_zeroed, dealloc, Layout};
use std::collections::BTreeMap;
use std::ops::{Deref, DerefMut};
use std::ptr::NonNull;

use galloper_obs::{counter, global};

/// Alignment of every [`AlignedBuf`]: one 4 KiB page, the unit the
/// kernel's page cache and mmap operate in.
pub const PAGE_ALIGN: usize = 4096;

/// The size class backing a buffer of `len` logical bytes: the smallest
/// power of two ≥ `len`, floored at one page.
pub fn size_class(len: usize) -> usize {
    len.max(1).next_power_of_two().max(PAGE_ALIGN)
}

/// An owned, page-aligned byte buffer with a power-of-two capacity and
/// an adjustable logical length.
///
/// Dereferences to `[u8]`; all capacity bytes are zero-initialized at
/// allocation, so growing the logical length via [`AlignedBuf::set_len`]
/// never exposes uninitialized memory (though recycled pool buffers keep
/// their previous *contents* — every producer in this module's callers
/// overwrites buffers completely before handing them on).
pub struct AlignedBuf {
    ptr: NonNull<u8>,
    len: usize,
    cap: usize,
}

// SAFETY: `AlignedBuf` uniquely owns its allocation (no aliasing, no
// interior mutability); moving that ownership across threads, or reading
// through `&AlignedBuf` from several threads, is exactly as safe as for
// `Vec<u8>`.
#[allow(unsafe_code)]
unsafe impl Send for AlignedBuf {}
#[allow(unsafe_code)]
unsafe impl Sync for AlignedBuf {}

impl AlignedBuf {
    fn layout(cap: usize) -> Layout {
        Layout::from_size_align(cap, PAGE_ALIGN).expect("size class fits a valid layout")
    }

    /// Allocates a zeroed buffer whose capacity is `len`'s size class
    /// and whose logical length is `len`.
    #[allow(unsafe_code)]
    pub fn zeroed(len: usize) -> AlignedBuf {
        let cap = size_class(len);
        let layout = Self::layout(cap);
        // SAFETY: `cap >= PAGE_ALIGN > 0`, so the layout is non-zero-sized
        // as `alloc_zeroed` requires.
        let raw = unsafe { alloc_zeroed(layout) };
        let Some(ptr) = NonNull::new(raw) else {
            std::alloc::handle_alloc_error(layout);
        };
        AlignedBuf { ptr, len, cap }
    }

    /// The buffer's logical length in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the logical length is zero.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The buffer's capacity — its power-of-two size class.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Sets the logical length (contents beyond the old length are
    /// whatever the buffer last held — zeros for a fresh allocation).
    ///
    /// # Panics
    ///
    /// If `len` exceeds the capacity.
    pub fn set_len(&mut self, len: usize) {
        assert!(len <= self.cap, "len {len} exceeds capacity {}", self.cap);
        self.len = len;
    }

    /// The buffer's bytes.
    #[allow(unsafe_code)]
    pub fn as_slice(&self) -> &[u8] {
        // SAFETY: invariants (1)–(3) above — `ptr` is a live allocation of
        // `cap` zero-initialized-at-birth bytes and `len <= cap`.
        unsafe { std::slice::from_raw_parts(self.ptr.as_ptr(), self.len) }
    }

    /// The buffer's bytes, mutably.
    #[allow(unsafe_code)]
    pub fn as_mut_slice(&mut self) -> &mut [u8] {
        // SAFETY: as in `as_slice`, plus `&mut self` guarantees
        // exclusivity.
        unsafe { std::slice::from_raw_parts_mut(self.ptr.as_ptr(), self.len) }
    }
}

impl Drop for AlignedBuf {
    #[allow(unsafe_code)]
    fn drop(&mut self) {
        // SAFETY: `ptr` came from `alloc_zeroed` with exactly this layout
        // (invariant 1) and is dropped at most once.
        unsafe { dealloc(self.ptr.as_ptr(), Self::layout(self.cap)) }
    }
}

impl Deref for AlignedBuf {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl DerefMut for AlignedBuf {
    fn deref_mut(&mut self) -> &mut [u8] {
        self.as_mut_slice()
    }
}

impl AsRef<[u8]> for AlignedBuf {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl fmt::Debug for AlignedBuf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AlignedBuf")
            .field("len", &self.len)
            .field("cap", &self.cap)
            .finish_non_exhaustive()
    }
}

impl PartialEq for AlignedBuf {
    fn eq(&self, other: &AlignedBuf) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for AlignedBuf {}

/// A size-classed free list of [`AlignedBuf`]s.
///
/// `checkout(len)` hands out a buffer of logical length `len`, recycled
/// from `len`'s size class when possible and freshly allocated (counted
/// in the `stream.pool.*` metrics) otherwise. Recycled buffers keep
/// their previous contents; every driver in this module overwrites
/// buffers completely before use.
#[derive(Debug, Default)]
pub struct AlignedPool {
    free: BTreeMap<usize, Vec<AlignedBuf>>,
    allocated: u64,
    reused: u64,
    resident_bytes: u64,
}

impl AlignedPool {
    /// An empty pool.
    pub fn new() -> AlignedPool {
        AlignedPool::default()
    }

    /// Buffers this pool has allocated over its lifetime — its peak
    /// residency in units of buffers.
    pub fn allocated(&self) -> u64 {
        self.allocated
    }

    /// Checkouts served from a free list instead of the allocator.
    pub fn reused(&self) -> u64 {
        self.reused
    }

    /// Bytes of capacity this pool has allocated (checked out + free).
    pub fn resident_bytes(&self) -> u64 {
        self.resident_bytes
    }

    /// Hands out a page-aligned buffer of logical length `len`
    /// (contents unspecified if recycled, zeroed if fresh).
    pub fn checkout(&mut self, len: usize) -> AlignedBuf {
        let class = size_class(len);
        if let Some(mut buf) = self.free.get_mut(&class).and_then(|v| v.pop()) {
            self.reused += 1;
            counter!("stream.pool.reuse", 1);
            buf.set_len(len);
            return buf;
        }
        self.allocated += 1;
        self.resident_bytes += class as u64;
        counter!("stream.pool.alloc", 1);
        let resident = global().gauge("stream.pool.resident_bytes");
        resident.add(class as i64);
        let peak = global().gauge("stream.pool.resident_peak_bytes");
        let now = resident.get();
        if now > peak.get() {
            peak.set(now);
        }
        let mut buf = AlignedBuf::zeroed(len);
        debug_assert_eq!(buf.capacity(), class);
        buf.set_len(len);
        buf
    }

    /// Returns a buffer to its size class's free list for reuse.
    pub fn give_back(&mut self, buf: AlignedBuf) {
        self.free.entry(buf.capacity()).or_default().push(buf);
    }
}

impl Drop for AlignedPool {
    fn drop(&mut self) {
        global()
            .gauge("stream.pool.resident_bytes")
            .add(-(self.resident_bytes as i64));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffers_are_page_aligned_and_size_classed() {
        for len in [1usize, 7, 4096, 4097, 5000, 1 << 20] {
            let buf = AlignedBuf::zeroed(len);
            assert_eq!(buf.as_slice().as_ptr() as usize % PAGE_ALIGN, 0);
            assert_eq!(buf.len(), len);
            assert_eq!(buf.capacity(), size_class(len));
            assert!(buf.iter().all(|&b| b == 0), "fresh buffers are zeroed");
        }
        assert_eq!(size_class(0), PAGE_ALIGN);
        assert_eq!(size_class(4096), 4096);
        assert_eq!(size_class(4097), 8192);
    }

    #[test]
    fn pool_recycles_within_a_class_and_is_bounded() {
        let mut pool = AlignedPool::new();
        // 100 checkout/give_back cycles across two lengths sharing one
        // class (both ≤ 4096) plus one larger class: residency stays at
        // one buffer per class ever alive at a time.
        for i in 0..100 {
            let a = pool.checkout(if i % 2 == 0 { 100 } else { 4096 });
            let b = pool.checkout(10_000);
            assert_eq!(b.capacity(), 16384);
            pool.give_back(a);
            pool.give_back(b);
        }
        assert_eq!(pool.allocated(), 2);
        assert_eq!(pool.reused(), 198);
        assert_eq!(pool.resident_bytes(), 4096 + 16384);
    }

    #[test]
    fn recycled_buffer_adopts_new_length() {
        let mut pool = AlignedPool::new();
        let mut a = pool.checkout(4096);
        a.as_mut_slice().fill(0xEE);
        pool.give_back(a);
        let b = pool.checkout(16);
        assert_eq!(b.len(), 16);
        assert_eq!(b.as_slice(), &[0xEE; 16], "recycled contents persist");
    }

    #[test]
    #[should_panic(expected = "exceeds capacity")]
    fn set_len_beyond_capacity_panics() {
        AlignedBuf::zeroed(16).set_len(PAGE_ALIGN + 1);
    }
}
