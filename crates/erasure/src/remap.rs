//! Symbol remapping: the basis-change technique (paper §III-C, §IV-B) that
//! moves original data from the k data blocks into *all* blocks.
//!
//! Both Carousel codes (even spreading, the ICDCS'17 baseline) and Galloper
//! codes (weighted spreading, this paper's contribution) are produced by
//! the same three steps implemented here:
//!
//! 1. expand the block-level generator `G` into the stripe-level
//!    `G_g = G ⊗ I_N`;
//! 2. [`sequential_selection`] — choose `m_i` stripes per block by walking
//!    rows top-to-bottom across blocks with wraparound, which guarantees
//!    exactly `k` chosen stripes in every row;
//! 3. [`remap_basis`] — change basis with `G_g · G_{g0}⁻¹` so the chosen
//!    stripes become the original data, then rotate each block's stripes
//!    so its data stripes sit at the top (maximizing sequential reads).

use galloper_linalg::Matrix;

use crate::ConstructionError;

/// Sequential stripe selection with wraparound (§IV-B).
///
/// Walks blocks left to right, selecting `counts[i]` consecutive rows from
/// block `i` starting where the previous block stopped, wrapping from the
/// last row to the first. Returns, per block, the selected row indices in
/// selection order (each block's list is cyclically contiguous).
///
/// When `counts` sums to `k · n_stripes`, the walk passes every row exactly
/// `k` times, so every row has exactly `k` selected stripes — the
/// invariant that makes the selection a basis.
///
/// # Panics
///
/// Panics if any count exceeds `n_stripes` (a block cannot hold more than
/// one stripe per row) or if `n_stripes` is zero.
pub fn sequential_selection(counts: &[usize], n_stripes: usize) -> Vec<Vec<usize>> {
    assert!(n_stripes > 0, "stripe count must be non-zero");
    let mut cursor = 0usize;
    counts
        .iter()
        .map(|&m| {
            assert!(m <= n_stripes, "cannot select {m} of {n_stripes} stripes");
            let sel: Vec<usize> = (0..m).map(|i| (cursor + i) % n_stripes).collect();
            cursor = (cursor + m) % n_stripes;
            sel
        })
        .collect()
}

/// The result of a symbol-remapping basis change.
#[derive(Debug, Clone)]
pub struct RemappedCode {
    /// Stripe-level generator in *stored* order (rotation applied): row
    /// `b·N + p` produces the stripe stored at position `p` of block `b`.
    pub generator: Matrix,
    /// Per block: the original stripe indices held at its leading
    /// positions, in stored order (feeds [`DataLayout`](crate::DataLayout)).
    pub assignments: Vec<Vec<usize>>,
}

/// Changes the basis of the expanded generator `gg` so that the stripes
/// named by `selections` become the original data, then rotates each
/// block's rows so its data stripes are stored first.
///
/// * `gg` — stripe-level generator `(n·N) × (k·N)` (typically `G ⊗ I_N`).
/// * `selections` — per block, the selected row indices in selection
///   order; the `i`-th selected stripe overall (block-major) will hold
///   original stripe `i`.
///
/// # Errors
///
/// [`ConstructionError::RankDeficient`] if the selected stripes do not
/// form a basis (the selection-per-row invariant was violated).
///
/// # Panics
///
/// Panics if shapes disagree (selection count ≠ `k·N`, or `gg` rows not a
/// multiple of `n_stripes`).
pub fn remap_basis(
    gg: &Matrix,
    selections: &[Vec<usize>],
    n_stripes: usize,
) -> Result<RemappedCode, ConstructionError> {
    let n_blocks = selections.len();
    assert_eq!(
        gg.rows(),
        n_blocks * n_stripes,
        "generator rows must equal blocks × stripes"
    );
    let kn = gg.cols();
    let total_selected: usize = selections.iter().map(Vec::len).sum();
    assert_eq!(total_selected, kn, "must select exactly k·N stripes");

    // Global row indices of the selected stripes, in selection order.
    let selected_rows: Vec<usize> = selections
        .iter()
        .enumerate()
        .flat_map(|(b, sel)| sel.iter().map(move |&s| b * n_stripes + s))
        .collect();

    let gg0 = gg.select_rows(&selected_rows);
    let gg0_inv = gg0.inverted().ok_or(ConstructionError::RankDeficient)?;
    let remapped = gg * &gg0_inv;

    // Rotate each block so its selected stripes are stored first. Selected
    // rows are cyclically contiguous starting at the first selection.
    let mut stored_rows = Vec::with_capacity(gg.rows());
    let mut assignments = Vec::with_capacity(n_blocks);
    let mut next_original = 0usize;
    for (b, sel) in selections.iter().enumerate() {
        let start = sel.first().copied().unwrap_or(0);
        for p in 0..n_stripes {
            stored_rows.push(b * n_stripes + (start + p) % n_stripes);
        }
        assignments.push((next_original..next_original + sel.len()).collect());
        next_original += sel.len();
    }
    let generator = remapped.select_rows(&stored_rows);

    Ok(RemappedCode {
        generator,
        assignments,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selection_covers_each_row_k_times() {
        // Fig. 4: k=4, g=1, N=7, counts (6,6,6,6,4).
        let counts = [6usize, 6, 6, 6, 4];
        let sel = sequential_selection(&counts, 7);
        let mut per_row = [0usize; 7];
        for s in &sel {
            for &row in s {
                per_row[row] += 1;
            }
        }
        assert_eq!(per_row, [4; 7], "each row must be selected exactly k times");
        // Block 0 takes rows 0..6, block 4 wraps from row 3.
        assert_eq!(sel[0], vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(sel[1], vec![6, 0, 1, 2, 3, 4]);
        assert_eq!(sel[4], vec![3, 4, 5, 6]);
    }

    #[test]
    fn selection_handles_full_blocks() {
        let sel = sequential_selection(&[3, 3, 3], 3);
        assert_eq!(sel[0], vec![0, 1, 2]);
        assert_eq!(sel[1], vec![0, 1, 2]);
        assert_eq!(sel[2], vec![0, 1, 2]);
    }

    #[test]
    fn selection_handles_zero_counts() {
        let sel = sequential_selection(&[2, 0, 2], 2);
        assert_eq!(sel[1], Vec::<usize>::new());
        assert_eq!(sel[2], vec![0, 1]);
    }

    #[test]
    #[should_panic(expected = "cannot select")]
    fn selection_rejects_overfull() {
        let _ = sequential_selection(&[4], 3);
    }

    #[test]
    fn remap_produces_identity_rows_at_data_positions() {
        // (2,1) XOR code expanded to N = 3 stripes, counts (2,2,2).
        let g = Matrix::from_rows(&[vec![1, 0], vec![0, 1], vec![1, 1]]);
        let gg = g.kron_identity(3);
        let selections = sequential_selection(&[2, 2, 2], 3);
        let rc = remap_basis(&gg, &selections, 3).unwrap();
        // Stored data positions must carry identity rows.
        for (b, assign) in rc.assignments.iter().enumerate() {
            for (p, &orig) in assign.iter().enumerate() {
                let row = rc.generator.row(b * 3 + p);
                for (j, &v) in row.iter().enumerate() {
                    assert_eq!(v, u8::from(j == orig), "block {b} pos {p}");
                }
            }
        }
        // Full column rank is preserved.
        assert_eq!(rc.generator.rank(), 6);
    }

    #[test]
    fn remap_preserves_code_space() {
        // The remapped generator must have the same column space as the
        // original: every parity-check relation survives. Check the XOR
        // relation row-wise: for each raw row, block2 stripe = block0 ⊕
        // block1 stripe. After rotation we verify via the generator rows:
        // G'[2N + p2] = G'[0N + p0] + G'[1N + p1] whenever the stored
        // positions p0, p1, p2 map to the same raw row.
        let g = Matrix::from_rows(&[vec![1, 0], vec![0, 1], vec![1, 1]]);
        let n = 3;
        let gg = g.kron_identity(n);
        let selections = sequential_selection(&[2, 2, 2], n);
        let rc = remap_basis(&gg, &selections, n).unwrap();
        // Reconstruct the stored→raw row maps from the selections' starts.
        let starts: Vec<usize> = selections
            .iter()
            .map(|s| s.first().copied().unwrap_or(0))
            .collect();
        for raw in 0..n {
            let pos: Vec<usize> = starts.iter().map(|&st| (raw + n - st) % n).collect();
            for j in 0..rc.generator.cols() {
                let a = rc.generator.get(pos[0], j);
                let b = rc.generator.get(n + pos[1], j);
                let c = rc.generator.get(2 * n + pos[2], j);
                assert_eq!(a + b, c, "raw row {raw} col {j}");
            }
        }
    }

    #[test]
    fn remap_detects_bad_selection() {
        // Select both stripes of each data row from the same blocks,
        // leaving a row with fewer than k selections → singular.
        let g = Matrix::from_rows(&[vec![1, 0], vec![0, 1], vec![1, 1]]);
        let gg = g.kron_identity(2);
        // Block 0 selects row 0 twice? Not possible (distinct). Instead:
        // choose selections violating the per-row-k invariant: block0
        // rows {0,1}, block1 rows {0,1}, block2 none — row coverage is
        // (2,2): still k=2 per row and this IS a basis (both data blocks).
        // A genuinely singular choice: block0 {0}, block1 {0}, block2 {0,1}:
        // row 0 has 3 selections, row 1 has 1 → dependent.
        let selections = vec![vec![0], vec![0], vec![0, 1]];
        assert!(matches!(
            remap_basis(&gg, &selections, 2),
            Err(ConstructionError::RankDeficient)
        ));
    }
}
