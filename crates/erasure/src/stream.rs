//! Streaming, bounded-memory codec drivers.
//!
//! Every [`ErasureCode`] consumes messages of one fixed length, so a
//! multi-gigabyte object is a *sequence* of coding groups — and nothing
//! about coding requires more than one group (per worker thread) to be
//! resident at a time. The paper's Hadoop prototype (§VI) exploits
//! exactly this, pumping HDFS files through a fixed-size buffer; the
//! drivers here are the Rust analogue:
//!
//! * [`StripeEncoder`] — push arbitrary-sized byte chunks, receive fully
//!   encoded coding groups through a [`GroupSink`] as soon as each is
//!   complete. Tail zero-padding happens once, inside [`StripeEncoder::finish`].
//! * [`StripeDecoder`] — feed one group's block availability at a time,
//!   receive exactly the object bytes that group carries (the driver
//!   truncates the final group's padding).
//! * [`StripeReconstructor`] — rebuild one block of every group from its
//!   repair plan's sources, group by group.
//!
//! Block and message buffers are page-aligned [`AlignedBuf`]s recycled
//! through a size-classed [`AlignedPool`], so a steady-state encode
//! performs **no per-group allocation**: peak codec memory is
//! `O(one coding group × groups in flight)` regardless of the object's
//! size. Callers that already hold whole messages contiguously in memory
//! (a mapped file, an aligned read buffer) can skip the staging copy
//! entirely with [`StripeEncoder::push_messages`], which encodes
//! straight out of the caller's bytes. On the output side, sinks receive
//! whole batches ([`GroupSink::batch`]) so they can turn a batch of
//! groups into one vectored write per destination;
//! [`write_all_vectored`] is the shared syscall loop for doing so.
//! [`StripeEncoder::with_concurrency`] additionally
//! overlaps whole groups across the persistent worker pool
//! ([`galloper_linalg::pool::global_pool`]) — no per-group thread spawns;
//! each group's encode already fans its output rows across the same pool
//! via [`galloper_linalg::apply_parallel_into`].
//!
//! The drivers feed the global [`galloper_obs`] registry:
//!
//! | metric | kind | meaning |
//! |---|---|---|
//! | `stream.groups` | counter | coding groups pushed through any driver |
//! | `stream.group_us` | histogram | per-group codec latency (encode, decode, or reconstruct) |
//! | `stream.pool.alloc` | counter | buffers newly allocated by pools |
//! | `stream.pool.reuse` | counter | buffer checkouts served from a pool's free list |
//! | `stream.pool.resident_bytes` | gauge | bytes currently held by live pools |
//! | `stream.pool.resident_peak_bytes` | gauge | high-water mark of the above |
//!
//! When a request-scoped operation is active (see [`galloper_obs::op`]),
//! each group additionally records a child span
//! (`stream.encode_group` / `stream.decode_group` /
//! `stream.reconstruct_group`) so a whole object's codec work hangs off
//! the originating DFS operation in the trace.

use std::io::{self, IoSlice, Write};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

use galloper_obs::{counter, global, op, Histogram};

use crate::{CodeError, ErasureCode, ObjectManifest, RepairPlan};

use core::fmt;

mod aligned;

pub use aligned::{size_class, AlignedBuf, AlignedPool, PAGE_ALIGN};

/// Writes every byte of `slices` to `w` with as few syscalls as the
/// writer allows — the shared vectored-write loop for the zero-copy
/// pipeline (block files, `DiskStore` records, network frames). The
/// slices are consumed in place.
///
/// # Errors
///
/// Any error from the writer; a writer that reports `Ok(0)` with bytes
/// remaining surfaces as [`io::ErrorKind::WriteZero`].
pub fn write_all_vectored<W: Write + ?Sized>(
    w: &mut W,
    slices: &mut [IoSlice<'_>],
) -> io::Result<()> {
    // Skip slices that are empty from the start, so an all-empty list
    // never reaches the writer (whose `Ok(0)` would read as `WriteZero`);
    // `advance_slices` drops any later empties as it passes them.
    let skip = slices.iter().take_while(|s| s.is_empty()).count();
    let mut slices = &mut slices[skip..];
    while !slices.is_empty() {
        match w.write_vectored(slices) {
            Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
            Ok(n) => IoSlice::advance_slices(&mut slices, n),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

/// The shared per-group latency histogram, cached so per-group cost is
/// an atomic bump, not a registry lookup.
fn group_hist() -> &'static Arc<Histogram> {
    static HIST: OnceLock<Arc<Histogram>> = OnceLock::new();
    HIST.get_or_init(|| global().histogram("stream.group_us"))
}

/// A per-group child span when an operation is active; `None` otherwise
/// so standalone codec runs don't mint operation ids.
fn group_span(name: &'static str) -> Option<op::OpSpan> {
    op::current().is_active().then(|| op::span(name, "stream"))
}

/// Errors from the streaming drivers.
///
/// `E` is the sink's error type; drivers without a sink use the default
/// [`core::convert::Infallible`], making those variants unconstructible.
#[derive(Debug)]
#[non_exhaustive]
pub enum StreamError<E = core::convert::Infallible> {
    /// The underlying code rejected an operation.
    Code(CodeError),
    /// The [`GroupSink`] failed to accept an encoded group.
    Sink(E),
    /// More groups were fed to a driver than its manifest records.
    TooManyGroups {
        /// Groups the manifest records.
        expected: usize,
    },
    /// A driver was finished before every group was processed.
    MissingGroups {
        /// Groups processed so far.
        got: usize,
        /// Groups the manifest records.
        expected: usize,
    },
}

impl<E: fmt::Display> fmt::Display for StreamError<E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StreamError::Code(e) => write!(f, "coding failure: {e}"),
            StreamError::Sink(e) => write!(f, "group sink failed: {e}"),
            StreamError::TooManyGroups { expected } => {
                write!(f, "stream already processed all {expected} groups")
            }
            StreamError::MissingGroups { got, expected } => {
                write!(f, "stream finished after {got} of {expected} groups")
            }
        }
    }
}

impl<E: std::error::Error + 'static> std::error::Error for StreamError<E> {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StreamError::Code(e) => Some(e),
            StreamError::Sink(e) => Some(e),
            StreamError::TooManyGroups { .. } | StreamError::MissingGroups { .. } => None,
        }
    }
}

impl<E> From<CodeError> for StreamError<E> {
    fn from(e: CodeError) -> Self {
        StreamError::Code(e)
    }
}

/// Receives encoded coding groups, in order, from a [`StripeEncoder`].
///
/// The encoder retains ownership of the block buffers (they return to
/// its [`AlignedPool`] after the call), so a sink that needs the bytes
/// beyond the call must copy them — typically it writes them to files,
/// sockets, or a block store instead.
///
/// Any `FnMut(usize, &[AlignedBuf]) -> Result<(), E>` closure is a sink.
pub trait GroupSink {
    /// The sink's failure type (e.g. [`std::io::Error`] for file sinks).
    type Error;

    /// Accepts coding group `group` (0-based, strictly increasing);
    /// `blocks[b]` is block `b` of that group.
    ///
    /// # Errors
    ///
    /// Any sink-specific failure; the encoder surfaces it as
    /// [`StreamError::Sink`] and stops.
    fn group(&mut self, group: usize, blocks: &[AlignedBuf]) -> Result<(), Self::Error>;

    /// Accepts a contiguous batch of groups — `groups[i]` is coding
    /// group `first_group + i`. The encoder delivers whole batches so a
    /// sink can coalesce them (e.g. one vectored write per block file
    /// covering every group in the batch); the default simply calls
    /// [`GroupSink::group`] once per group.
    ///
    /// # Errors
    ///
    /// As [`GroupSink::group`].
    fn batch(&mut self, first_group: usize, groups: &[Vec<AlignedBuf>]) -> Result<(), Self::Error> {
        for (i, blocks) in groups.iter().enumerate() {
            self.group(first_group + i, blocks)?;
        }
        Ok(())
    }
}

impl<F, E> GroupSink for F
where
    F: FnMut(usize, &[AlignedBuf]) -> Result<(), E>,
{
    type Error = E;

    fn group(&mut self, group: usize, blocks: &[AlignedBuf]) -> Result<(), E> {
        self(group, blocks)
    }
}

/// How a batch of full messages is encoded into per-group block buffers.
///
/// Chosen once at construction: the serial strategy works for any code;
/// the overlapped strategy (selected by [`StripeEncoder::with_concurrency`])
/// requires `C: Sync` and encodes the batch's groups on the persistent
/// [`galloper_linalg::pool::global_pool`] workers. Messages arrive as
/// plain byte slices, so the same path serves pooled buffers and
/// zero-copy views into caller memory ([`StripeEncoder::push_messages`]).
type BatchFn<C> = fn(&C, &[&[u8]], &mut [Vec<AlignedBuf>]) -> Result<(), CodeError>;

fn encode_one_group<C: ErasureCode>(
    code: &C,
    msg: &[u8],
    blocks: &mut [AlignedBuf],
) -> Result<(), CodeError> {
    let _span = group_span("stream.encode_group");
    let t0 = Instant::now();
    let mut views: Vec<&mut [u8]> = blocks.iter_mut().map(|b| b.as_mut_slice()).collect();
    code.encode_into(msg, &mut views)?;
    group_hist().record(t0.elapsed().as_micros() as u64);
    Ok(())
}

fn encode_batch_serial<C: ErasureCode>(
    code: &C,
    batch: &[&[u8]],
    outs: &mut [Vec<AlignedBuf>],
) -> Result<(), CodeError> {
    for (msg, blocks) in batch.iter().zip(outs.iter_mut()) {
        encode_one_group(code, msg, blocks)?;
    }
    Ok(())
}

fn encode_batch_parallel<C: ErasureCode + Sync>(
    code: &C,
    batch: &[&[u8]],
    outs: &mut [Vec<AlignedBuf>],
) -> Result<(), CodeError> {
    if batch.len() <= 1 {
        return encode_batch_serial(code, batch, outs);
    }
    // One result slot per group; the pool's workers (which persist across
    // batches — no per-group thread spawns) fill them in place. A group's
    // encode may itself fan rows across the same pool; the pool's
    // help-while-wait scheduling makes that nesting deadlock-free.
    let mut results: Vec<Result<(), CodeError>> = batch.iter().map(|_| Ok(())).collect();
    let tasks: Vec<galloper_linalg::pool::ScopedTask<'_>> = batch
        .iter()
        .zip(outs.iter_mut())
        .zip(results.iter_mut())
        .map(|((msg, blocks), slot)| {
            Box::new(move || {
                *slot = encode_one_group(code, msg, blocks);
            }) as galloper_linalg::pool::ScopedTask<'_>
        })
        .collect();
    galloper_linalg::pool::global_pool().run(tasks);
    results.into_iter().collect()
}

/// Incremental encoder: pushes an arbitrary-length object through a
/// fixed-message [`ErasureCode`] one coding group at a time.
///
/// Input arrives via [`StripeEncoder::push`] in chunks of any size; each
/// time a full message accumulates, the group is encoded into recycled
/// page-aligned buffers and handed to the [`GroupSink`]. Callers that
/// already hold whole messages contiguously (a memory-mapped file, an
/// aligned read buffer) should use [`StripeEncoder::push_messages`]
/// instead, which encodes directly from the caller's bytes — no staging
/// copy at all. [`StripeEncoder::finish`] zero-pads the ragged tail (the
/// one place in the workspace where padding happens), flushes, and
/// returns the [`ObjectManifest`].
///
/// Peak memory is `O(message + codeword)` per group in flight — constant
/// in the object's length.
///
/// # Examples
///
/// ```
/// use galloper_erasure::stream::{AlignedBuf, StripeEncoder};
/// use galloper_rs::ReedSolomon;
///
/// let code = ReedSolomon::new(4, 2, 16)?; // message_len = 64
/// let mut stored: Vec<Vec<Vec<u8>>> = Vec::new();
/// let mut enc = StripeEncoder::new(&code, |_, blocks: &[AlignedBuf]| {
///     stored.push(blocks.iter().map(|b| b.to_vec()).collect());
///     Ok::<(), std::convert::Infallible>(())
/// });
/// enc.push(&[7u8; 100])?; // not a multiple of 64: tail is padded
/// let (manifest, _) = enc.finish()?;
/// assert_eq!(manifest.object_len, 100);
/// assert_eq!(manifest.num_groups, 2);
/// assert_eq!(stored.len(), 2);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct StripeEncoder<'c, C, S> {
    code: &'c C,
    sink: S,
    batch_fn: BatchFn<C>,
    concurrency: usize,
    pool: AlignedPool,
    pending: Option<AlignedBuf>,
    fill: usize,
    batch: Vec<AlignedBuf>,
    object_len: usize,
    groups_emitted: usize,
}

impl<'c, C: ErasureCode, S: GroupSink> StripeEncoder<'c, C, S> {
    /// A serial encoder (one group in flight). Each group's encode still
    /// fans its output rows across threads inside the code itself.
    pub fn new(code: &'c C, sink: S) -> Self {
        StripeEncoder {
            code,
            sink,
            batch_fn: encode_batch_serial::<C>,
            concurrency: 1,
            pool: AlignedPool::new(),
            pending: None,
            fill: 0,
            batch: Vec::new(),
            object_len: 0,
            groups_emitted: 0,
        }
    }

    /// Starts group numbering at `first` instead of 0, so a transfer
    /// split across several short-lived encoders (one per arriving
    /// network chunk, say) still delivers globally ordered group ids to
    /// its sink. The returned manifest's `num_groups` counts from group
    /// 0 — i.e. it is `first` plus the groups this encoder emitted — but
    /// its `object_len` covers only the bytes pushed through *this*
    /// encoder; resuming callers must track the cumulative length
    /// themselves.
    #[must_use]
    pub fn with_first_group(mut self, first: usize) -> Self {
        self.groups_emitted = first;
        self
    }

    /// Bytes consumed so far.
    pub fn bytes_consumed(&self) -> usize {
        self.object_len
    }

    /// Coding groups already delivered to the sink.
    pub fn groups_emitted(&self) -> usize {
        self.groups_emitted
    }

    /// The size-classed pool recycling message and block buffers (for
    /// residency stats).
    pub fn pool(&self) -> &AlignedPool {
        &self.pool
    }

    /// The sink, for inspection mid-stream.
    pub fn sink(&self) -> &S {
        &self.sink
    }

    /// Consumes `data`, emitting every coding group that completes.
    ///
    /// Bytes are staged into a pooled message buffer until a full
    /// message accumulates — the right entry point for arbitrary chunk
    /// boundaries. Message-aligned callers avoid the staging copy with
    /// [`StripeEncoder::push_messages`].
    ///
    /// # Errors
    ///
    /// [`StreamError::Code`] or [`StreamError::Sink`]; after an error the
    /// encoder should be dropped.
    pub fn push(&mut self, mut data: &[u8]) -> Result<(), StreamError<S::Error>> {
        let msg_len = self.code.message_len();
        while !data.is_empty() {
            if self.pending.is_none() {
                self.pending = Some(self.pool.checkout(msg_len));
            }
            let pending = self.pending.as_mut().expect("just filled");
            let take = (msg_len - self.fill).min(data.len());
            pending[self.fill..self.fill + take].copy_from_slice(&data[..take]);
            self.fill += take;
            self.object_len += take;
            data = &data[take..];
            if self.fill == msg_len {
                let full = self.pending.take().expect("pending message exists");
                self.fill = 0;
                self.batch.push(full);
                if self.batch.len() >= self.concurrency {
                    self.flush()?;
                }
            }
        }
        Ok(())
    }

    /// Consumes whole messages — each exactly
    /// [`message_len`](ErasureCode::message_len) bytes — encoding
    /// directly from the caller's memory with **no staging copy**: the
    /// zero-copy ingest path for mapped files and aligned read buffers.
    ///
    /// If a partial message is already staged (a preceding [`push`]
    /// ended mid-message), the messages are staged through the buffered
    /// path instead to preserve byte order.
    ///
    /// [`push`]: StripeEncoder::push
    ///
    /// # Errors
    ///
    /// [`StreamError::Code`] (e.g. a slice that is not exactly one
    /// message long) or [`StreamError::Sink`]; after an error the
    /// encoder should be dropped.
    pub fn push_messages(&mut self, messages: &[&[u8]]) -> Result<(), StreamError<S::Error>> {
        if self.fill > 0 {
            for msg in messages {
                self.push(msg)?;
            }
            return Ok(());
        }
        // Deliver any staged full messages first so groups stay ordered.
        self.flush()?;
        for chunk in messages.chunks(self.concurrency.max(1)) {
            self.encode_batch(chunk)?;
            self.object_len += chunk.iter().map(|m| m.len()).sum::<usize>();
        }
        Ok(())
    }

    /// Zero-pads and emits the ragged tail (an empty object still
    /// occupies one all-zero group, exactly as
    /// [`ObjectCodec::encode_object`](crate::ObjectCodec::encode_object)
    /// does), flushes everything in flight, and returns the manifest
    /// along with the sink.
    ///
    /// # Errors
    ///
    /// [`StreamError::Code`] or [`StreamError::Sink`].
    pub fn finish(mut self) -> Result<(ObjectManifest, S), StreamError<S::Error>> {
        let tail_pending = self.fill > 0;
        // A resumed encoder (`with_first_group` > 0) that received no
        // bytes has nothing to pad: only a genuinely empty *object*
        // earns the single all-zero group.
        let empty_object =
            self.object_len == 0 && self.batch.is_empty() && self.groups_emitted == 0;
        if tail_pending || empty_object {
            let mut pending = match self.pending.take() {
                Some(buf) => buf,
                None => self.pool.checkout(self.code.message_len()),
            };
            // The single place tail padding happens: recycled buffers may
            // be dirty, so the unfilled remainder is zeroed here.
            pending[self.fill..].fill(0);
            self.fill = 0;
            self.batch.push(pending);
        }
        self.flush()?;
        let manifest = ObjectManifest {
            object_len: self.object_len,
            num_groups: self.groups_emitted,
        };
        Ok((manifest, self.sink))
    }

    /// Encodes and delivers the staged full messages, returning their
    /// buffers to the pool.
    fn flush(&mut self) -> Result<(), StreamError<S::Error>> {
        if self.batch.is_empty() {
            return Ok(());
        }
        let batch = std::mem::take(&mut self.batch);
        let views: Vec<&[u8]> = batch.iter().map(|m| m.as_slice()).collect();
        let res = self.encode_batch(&views);
        drop(views);
        for msg in batch {
            self.pool.give_back(msg);
        }
        res
    }

    /// Encodes `msgs` (one coding group each) into pooled block buffers
    /// and delivers them to the sink as one batch.
    fn encode_batch(&mut self, msgs: &[&[u8]]) -> Result<(), StreamError<S::Error>> {
        if msgs.is_empty() {
            return Ok(());
        }
        let n = self.code.num_blocks();
        let block_len = self.code.block_len();
        let mut outs: Vec<Vec<AlignedBuf>> = msgs
            .iter()
            .map(|_| (0..n).map(|_| self.pool.checkout(block_len)).collect())
            .collect();
        let encoded = (self.batch_fn)(self.code, msgs, &mut outs);
        let delivered = match encoded {
            Ok(()) => {
                counter!("stream.groups", msgs.len());
                self.sink
                    .batch(self.groups_emitted, &outs)
                    .map_err(StreamError::Sink)
            }
            Err(e) => Err(StreamError::Code(e)),
        };
        for blocks in outs {
            for b in blocks {
                self.pool.give_back(b);
            }
        }
        delivered?;
        self.groups_emitted += msgs.len();
        Ok(())
    }
}

impl<'c, C: ErasureCode + Sync, S: GroupSink> StripeEncoder<'c, C, S> {
    /// Overlaps up to `groups` coding groups across the persistent
    /// worker pool ([`galloper_linalg::pool::global_pool`]).
    ///
    /// Peak memory grows to `O(one coding group × groups)`. Note each
    /// group's encode may itself be multi-threaded (the
    /// [`galloper_linalg::apply_parallel`] machinery, sharing the same
    /// pool), so modest values — 2 to 4 — are usually enough to hide
    /// per-group latency.
    #[must_use]
    pub fn with_concurrency(mut self, groups: usize) -> Self {
        self.concurrency = groups.max(1);
        self.batch_fn = encode_batch_parallel::<C>;
        self
    }
}

/// Incremental decoder: recovers an object group by group, truncating
/// the final group's padding so callers never see it.
///
/// Feed each group's block availability (in group order) to
/// [`StripeDecoder::next_group`]; it returns exactly the object bytes
/// that group carries. [`StripeDecoder::finish`] verifies every group
/// was consumed.
#[derive(Debug)]
pub struct StripeDecoder<'c, C> {
    code: &'c C,
    object_len: usize,
    num_groups: usize,
    next_group: usize,
    emitted: usize,
}

impl<'c, C: ErasureCode> StripeDecoder<'c, C> {
    /// A decoder for the object described by `manifest`.
    pub fn new(code: &'c C, manifest: ObjectManifest) -> Self {
        StripeDecoder {
            code,
            object_len: manifest.object_len,
            num_groups: manifest.num_groups,
            next_group: 0,
            emitted: 0,
        }
    }

    /// Groups the manifest records.
    pub fn groups_total(&self) -> usize {
        self.num_groups
    }

    /// Groups decoded so far.
    pub fn groups_done(&self) -> usize {
        self.next_group
    }

    /// Whether every group has been decoded.
    pub fn is_done(&self) -> bool {
        self.next_group == self.num_groups
    }

    /// Repositions the decoder at coding group `group`, as if every
    /// earlier group had already been decoded — the entry point for
    /// serving one window of a chunked read without replaying the whole
    /// object. Tail-padding truncation still works because the bytes
    /// "already emitted" are recomputed from the group index.
    pub fn seek_group(&mut self, group: usize) {
        self.next_group = group.min(self.num_groups);
        self.emitted = (self.next_group * self.code.message_len()).min(self.object_len);
    }

    /// Decodes the next group from its block availability (`None` marks
    /// an erased block) and returns the object bytes it carries — a full
    /// message for interior groups, the unpadded remainder for the tail.
    ///
    /// # Errors
    ///
    /// * [`StreamError::TooManyGroups`] once every group was decoded.
    /// * [`StreamError::Code`] if the group cannot be decoded.
    pub fn next_group(&mut self, blocks: &[Option<&[u8]>]) -> Result<Vec<u8>, StreamError> {
        if self.next_group >= self.num_groups {
            return Err(StreamError::TooManyGroups {
                expected: self.num_groups,
            });
        }
        let _span = group_span("stream.decode_group");
        let t0 = Instant::now();
        let mut payload = self.code.decode(blocks)?;
        group_hist().record(t0.elapsed().as_micros() as u64);
        counter!("stream.groups", 1);
        let take = payload.len().min(self.object_len - self.emitted);
        payload.truncate(take);
        self.emitted += take;
        self.next_group += 1;
        Ok(payload)
    }

    /// Confirms the stream is complete, returning the object length.
    ///
    /// # Errors
    ///
    /// [`StreamError::MissingGroups`] if groups remain undecoded.
    pub fn finish(self) -> Result<usize, StreamError> {
        if self.next_group != self.num_groups {
            return Err(StreamError::MissingGroups {
                got: self.next_group,
                expected: self.num_groups,
            });
        }
        Ok(self.object_len)
    }
}

/// Incremental repair driver: rebuilds one block of every coding group
/// from exactly its repair plan's sources.
///
/// The [`RepairPlan`] is resolved once at construction; callers feed the
/// plan's source blocks (in plan order) for each group and receive the
/// rebuilt block bytes for that group.
#[derive(Debug)]
pub struct StripeReconstructor<'c, C> {
    code: &'c C,
    plan: RepairPlan,
    num_groups: usize,
    done: usize,
}

impl<'c, C: ErasureCode> StripeReconstructor<'c, C> {
    /// A reconstructor for block `target` across `num_groups` groups.
    ///
    /// # Errors
    ///
    /// [`CodeError::BlockIndexOutOfRange`] if `target` is invalid.
    pub fn new(code: &'c C, target: usize, num_groups: usize) -> Result<Self, CodeError> {
        Ok(StripeReconstructor {
            plan: code.repair_plan(target)?,
            code,
            num_groups,
            done: 0,
        })
    }

    /// The repair plan driving the rebuild (read its
    /// [`sources`](RepairPlan::sources) to know what to feed).
    pub fn plan(&self) -> &RepairPlan {
        &self.plan
    }

    /// Groups rebuilt so far.
    pub fn groups_done(&self) -> usize {
        self.done
    }

    /// Rebuilds the target block of the next group from `sources`
    /// (plan-ordered `(block index, bytes)` pairs).
    ///
    /// # Errors
    ///
    /// * [`StreamError::TooManyGroups`] once every group was rebuilt.
    /// * [`StreamError::Code`] on wrong sources or sizes.
    pub fn next_group(&mut self, sources: &[(usize, &[u8])]) -> Result<Vec<u8>, StreamError> {
        if self.done >= self.num_groups {
            return Err(StreamError::TooManyGroups {
                expected: self.num_groups,
            });
        }
        let _span = group_span("stream.reconstruct_group");
        let t0 = Instant::now();
        let rebuilt = self.code.reconstruct(self.plan.target(), sources)?;
        group_hist().record(t0.elapsed().as_micros() as u64);
        counter!("stream.groups", 1);
        self.done += 1;
        Ok(rebuilt)
    }

    /// Confirms every group's block was rebuilt.
    ///
    /// # Errors
    ///
    /// [`StreamError::MissingGroups`] if groups remain unprocessed.
    pub fn finish(self) -> Result<(), StreamError> {
        if self.done != self.num_groups {
            return Err(StreamError::MissingGroups {
                got: self.done,
                expected: self.num_groups,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BlockRole, DataLayout, LinearCode};
    use galloper_linalg::Matrix;

    /// The same tiny XOR code the object tests use: k=2, n=3, N=1.
    fn xor_code(stripe: usize) -> LinearCode {
        let generator = Matrix::from_rows(&[vec![1, 0], vec![0, 1], vec![1, 1]]);
        LinearCode::new(
            generator,
            2,
            vec![BlockRole::Data, BlockRole::Data, BlockRole::GlobalParity],
            DataLayout::systematic(2, 3, 1),
            vec![
                RepairPlan::new(0, vec![1, 2]),
                RepairPlan::new(1, vec![0, 2]),
                RepairPlan::new(2, vec![0, 1]),
            ],
            stripe,
        )
        .unwrap()
    }

    fn collect_groups(
        code: &LinearCode,
        data: &[u8],
        concurrency: usize,
        chunk: usize,
    ) -> (ObjectManifest, Vec<Vec<Vec<u8>>>) {
        let mut groups: Vec<Vec<Vec<u8>>> = Vec::new();
        let sink = |g: usize, blocks: &[AlignedBuf]| -> Result<(), core::convert::Infallible> {
            assert_eq!(g, groups.len(), "groups arrive in order");
            groups.push(blocks.iter().map(|b| b.to_vec()).collect());
            Ok(())
        };
        let mut enc = StripeEncoder::new(code, sink).with_concurrency(concurrency);
        for piece in data.chunks(chunk.max(1)) {
            enc.push(piece).unwrap();
        }
        let (manifest, _) = enc.finish().unwrap();
        (manifest, groups)
    }

    #[test]
    fn streaming_matches_oneshot_for_ragged_and_empty_objects() {
        let code = xor_code(4); // message_len = 8
        let codec = crate::ObjectCodec::new(code.clone());
        for len in [0usize, 1, 7, 8, 9, 16, 17, 100] {
            let data: Vec<u8> = (0..len).map(|i| (i * 13 + 5) as u8).collect();
            let oneshot = codec.encode_object(&data).unwrap();
            for concurrency in [1, 3] {
                for chunk in [1, 3, 8, 64] {
                    let (manifest, groups) = collect_groups(&code, &data, concurrency, chunk);
                    assert_eq!(manifest.object_len, oneshot.manifest.object_len);
                    assert_eq!(manifest.num_groups, oneshot.manifest.num_groups);
                    assert_eq!(groups, oneshot.groups, "len={len} chunk={chunk}");
                }
            }
        }
    }

    #[test]
    fn pool_residency_is_bounded_by_groups_in_flight() {
        let code = xor_code(4);
        let data: Vec<u8> = (0..800).map(|i| i as u8).collect(); // 100 groups
        let sink = |_: usize, _: &[AlignedBuf]| -> Result<(), core::convert::Infallible> { Ok(()) };
        let mut enc = StripeEncoder::new(&code, sink);
        enc.push(&data).unwrap();
        // Serial: exactly one message buffer and one codeword's blocks,
        // ever, despite 100 groups (message and block buffers share the
        // 4 KiB size class, so the bound is one group's worth of buffers).
        assert_eq!(enc.pool().allocated(), 1 + code.num_blocks() as u64);
        assert!(enc.pool().reused() >= 98);
        let (manifest, _) = enc.finish().unwrap();
        assert_eq!(manifest.num_groups, 100);
    }

    #[test]
    fn concurrent_pool_residency_scales_with_concurrency() {
        let code = xor_code(4);
        let data: Vec<u8> = (0..800).map(|i| (i * 7) as u8).collect();
        let sink = |_: usize, _: &[AlignedBuf]| -> Result<(), core::convert::Infallible> { Ok(()) };
        let mut enc = StripeEncoder::new(&code, sink).with_concurrency(4);
        enc.push(&data).unwrap();
        let (_, _) = {
            let e = enc;
            assert!(e.pool().allocated() <= (4 + 1) * (code.num_blocks() as u64 + 1));
            e.finish().unwrap()
        };
    }

    #[test]
    fn push_messages_matches_push_and_skips_staging() {
        let code = xor_code(4); // message_len = 8
        let data: Vec<u8> = (0..100).map(|i| (i * 31 + 2) as u8).collect();
        for concurrency in [1, 3] {
            let (expect_manifest, expect_groups) = collect_groups(&code, &data, concurrency, 64);

            let mut groups: Vec<Vec<Vec<u8>>> = Vec::new();
            let sink = |g: usize, blocks: &[AlignedBuf]| -> Result<(), core::convert::Infallible> {
                assert_eq!(g, groups.len(), "groups arrive in order");
                groups.push(blocks.iter().map(|b| b.to_vec()).collect());
                Ok(())
            };
            let mut enc = StripeEncoder::new(&code, sink).with_concurrency(concurrency);
            let whole = data.chunks_exact(8);
            let tail = whole.remainder();
            let msgs: Vec<&[u8]> = whole.collect();
            enc.push_messages(&msgs).unwrap();
            // Zero-copy ingest: no message-sized staging buffer was ever
            // checked out, only block buffers.
            assert!(enc.pool().allocated() <= (concurrency as u64) * code.num_blocks() as u64);
            enc.push(tail).unwrap();
            let (manifest, _) = enc.finish().unwrap();
            assert_eq!(manifest.object_len, expect_manifest.object_len);
            assert_eq!(manifest.num_groups, expect_manifest.num_groups);
            assert_eq!(groups, expect_groups, "concurrency={concurrency}");
        }
    }

    #[test]
    fn push_messages_after_partial_push_preserves_order() {
        let code = xor_code(4); // message_len = 8
        let data: Vec<u8> = (0..40).map(|i| (i * 3 + 7) as u8).collect();
        let (expect_manifest, expect_groups) = collect_groups(&code, &data, 1, 40);
        let mut groups: Vec<Vec<Vec<u8>>> = Vec::new();
        let sink = |g: usize, blocks: &[AlignedBuf]| -> Result<(), core::convert::Infallible> {
            assert_eq!(g, groups.len());
            groups.push(blocks.iter().map(|b| b.to_vec()).collect());
            Ok(())
        };
        let mut enc = StripeEncoder::new(&code, sink);
        enc.push(&data[..3]).unwrap(); // partial message staged
        let msgs: Vec<&[u8]> = data[3..35].chunks(8).collect();
        enc.push_messages(&msgs).unwrap(); // falls back to staging
        enc.push(&data[35..]).unwrap();
        let (manifest, _) = enc.finish().unwrap();
        assert_eq!(manifest.object_len, expect_manifest.object_len);
        assert_eq!(groups, expect_groups);
    }

    #[test]
    fn push_messages_rejects_wrong_length() {
        let code = xor_code(4);
        let sink = |_: usize, _: &[AlignedBuf]| -> Result<(), core::convert::Infallible> { Ok(()) };
        let mut enc = StripeEncoder::new(&code, sink);
        let err = enc.push_messages(&[&[0u8; 7]]).expect_err("short message");
        assert!(matches!(
            err,
            StreamError::Code(CodeError::InvalidDataLength { .. })
        ));
    }

    #[test]
    fn batch_sink_sees_contiguous_group_runs() {
        struct BatchSink {
            batches: Vec<(usize, usize)>,
            groups: Vec<Vec<Vec<u8>>>,
        }
        impl GroupSink for BatchSink {
            type Error = core::convert::Infallible;
            fn group(&mut self, group: usize, blocks: &[AlignedBuf]) -> Result<(), Self::Error> {
                assert_eq!(group, self.groups.len());
                self.groups
                    .push(blocks.iter().map(|b| b.to_vec()).collect());
                Ok(())
            }
            fn batch(
                &mut self,
                first_group: usize,
                groups: &[Vec<AlignedBuf>],
            ) -> Result<(), Self::Error> {
                self.batches.push((first_group, groups.len()));
                for (i, blocks) in groups.iter().enumerate() {
                    self.group(first_group + i, blocks)?;
                }
                Ok(())
            }
        }
        let code = xor_code(4);
        let data: Vec<u8> = (0..64).map(|i| i as u8).collect(); // 8 groups
        let (_, expect_groups) = collect_groups(&code, &data, 1, 64);
        let sink = BatchSink {
            batches: Vec::new(),
            groups: Vec::new(),
        };
        let mut enc = StripeEncoder::new(&code, sink).with_concurrency(4);
        let msgs: Vec<&[u8]> = data.chunks_exact(8).collect();
        enc.push_messages(&msgs).unwrap();
        let (manifest, sink) = enc.finish().unwrap();
        assert_eq!(manifest.num_groups, 8);
        assert_eq!(sink.groups, expect_groups);
        assert_eq!(
            sink.batches,
            vec![(0, 4), (4, 4)],
            "whole batches, in order"
        );
    }

    #[test]
    fn decoder_truncates_tail_and_tracks_groups() {
        let code = xor_code(4);
        let data: Vec<u8> = (0..19).map(|i| 250 - i as u8).collect(); // 3 groups, ragged
        let (manifest, groups) = collect_groups(&code, &data, 1, 19);
        let mut dec = StripeDecoder::new(&code, manifest);
        let mut out = Vec::new();
        for blocks in &groups {
            let avail: Vec<Option<&[u8]>> = blocks.iter().map(|b| Some(b.as_slice())).collect();
            out.extend_from_slice(&dec.next_group(&avail).unwrap());
        }
        assert!(dec.is_done());
        let avail: Vec<Option<&[u8]>> = groups[0].iter().map(|b| Some(b.as_slice())).collect();
        assert!(matches!(
            dec.next_group(&avail),
            Err(StreamError::TooManyGroups { expected: 3 })
        ));
        assert_eq!(dec.finish().unwrap(), 19);
        assert_eq!(out, data);
    }

    #[test]
    fn resumed_encoders_match_one_continuous_encode() {
        let code = xor_code(4); // message_len = 8
        let data: Vec<u8> = (0..100).map(|i| (i * 11 + 3) as u8).collect();
        let (expect_manifest, expect_groups) = collect_groups(&code, &data, 1, 100);

        // Re-encode the same object through one short-lived encoder per
        // slice, carrying only whole messages forward (the chunked-put
        // server path): group ids and bytes must match exactly.
        let mut groups: Vec<Vec<Vec<u8>>> = Vec::new();
        let mut first_group = 0usize;
        let mut stage: Vec<u8> = Vec::new();
        for slice in data.chunks(29) {
            stage.extend_from_slice(slice);
            let whole = stage.len() / 8 * 8;
            let sink = |g: usize, blocks: &[AlignedBuf]| -> Result<(), core::convert::Infallible> {
                assert_eq!(g, groups.len(), "global group order survives resume");
                groups.push(blocks.iter().map(|b| b.to_vec()).collect());
                Ok(())
            };
            let mut enc = StripeEncoder::new(&code, sink).with_first_group(first_group);
            enc.push(&stage[..whole]).unwrap();
            let (m, _) = enc.finish().unwrap();
            assert_eq!(m.num_groups, first_group + whole / 8);
            first_group = m.num_groups;
            stage.drain(..whole);
        }
        // Commit: pad the ragged tail through one final resumed encoder.
        let sink = |g: usize, blocks: &[AlignedBuf]| -> Result<(), core::convert::Infallible> {
            assert_eq!(g, groups.len());
            groups.push(blocks.iter().map(|b| b.to_vec()).collect());
            Ok(())
        };
        let mut enc = StripeEncoder::new(&code, sink).with_first_group(first_group);
        enc.push(&stage).unwrap();
        let (m, _) = enc.finish().unwrap();
        assert_eq!(m.num_groups, expect_manifest.num_groups);
        assert_eq!(groups, expect_groups);
    }

    #[test]
    fn resumed_encoder_finish_without_bytes_emits_nothing() {
        let code = xor_code(4);
        let mut called = false;
        let sink = |_: usize, _: &[AlignedBuf]| -> Result<(), core::convert::Infallible> {
            called = true;
            Ok(())
        };
        let enc = StripeEncoder::new(&code, sink).with_first_group(5);
        let (m, _) = enc.finish().unwrap();
        assert_eq!(m.num_groups, 5, "no spurious zero group on resume");
        assert!(!called);
    }

    #[test]
    fn decoder_seek_group_serves_interior_and_tail_windows() {
        let code = xor_code(4); // message_len = 8
        let data: Vec<u8> = (0..19).map(|i| (i * 5 + 1) as u8).collect(); // 3 groups, ragged
        let (manifest, groups) = collect_groups(&code, &data, 1, 19);
        for start in 0..groups.len() {
            let mut dec = StripeDecoder::new(&code, manifest);
            dec.seek_group(start);
            assert_eq!(dec.groups_done(), start);
            let mut out = Vec::new();
            for blocks in &groups[start..] {
                let avail: Vec<Option<&[u8]>> = blocks.iter().map(|b| Some(b.as_slice())).collect();
                out.extend_from_slice(&dec.next_group(&avail).unwrap());
            }
            assert_eq!(out, &data[(start * 8).min(data.len())..], "start={start}");
            assert_eq!(dec.finish().unwrap(), 19);
        }
        // Seeking past the end clamps: the decoder is simply done.
        let mut dec = StripeDecoder::new(&code, manifest);
        dec.seek_group(99);
        assert!(dec.is_done());
    }

    #[test]
    fn decoder_finish_rejects_missing_groups() {
        let code = xor_code(4);
        let manifest = ObjectManifest {
            object_len: 16,
            num_groups: 2,
        };
        let dec = StripeDecoder::new(&code, manifest);
        assert!(matches!(
            dec.finish(),
            Err(StreamError::MissingGroups {
                got: 0,
                expected: 2
            })
        ));
    }

    #[test]
    fn reconstructor_rebuilds_each_block_groupwise() {
        let code = xor_code(4);
        let data: Vec<u8> = (0..24).map(|i| (i * 3 + 1) as u8).collect();
        let (manifest, groups) = collect_groups(&code, &data, 1, 24);
        for target in 0..3 {
            let mut rec = StripeReconstructor::new(&code, target, manifest.num_groups).unwrap();
            let src_ids: Vec<usize> = rec.plan().sources().to_vec();
            for blocks in &groups {
                let sources: Vec<(usize, &[u8])> =
                    src_ids.iter().map(|&s| (s, blocks[s].as_slice())).collect();
                let rebuilt = rec.next_group(&sources).unwrap();
                assert_eq!(rebuilt, blocks[target]);
            }
            rec.finish().unwrap();
        }
    }

    #[test]
    fn sink_errors_surface_and_buffers_recycle() {
        let code = xor_code(4);
        let mut calls = 0usize;
        let sink = move |_: usize, _: &[AlignedBuf]| -> Result<(), &'static str> {
            calls += 1;
            if calls >= 2 {
                Err("disk full")
            } else {
                Ok(())
            }
        };
        let mut enc = StripeEncoder::new(&code, sink);
        let err = enc.push(&[9u8; 64]).expect_err("second group must fail");
        assert!(matches!(err, StreamError::Sink("disk full")));
    }

    #[test]
    fn write_all_vectored_survives_partial_writes() {
        /// A writer that accepts at most 3 bytes per call and ignores
        /// all but the first non-empty slice, like a nearly-full pipe.
        struct Dribble(Vec<u8>);
        impl std::io::Write for Dribble {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                let take = buf.len().min(3);
                self.0.extend_from_slice(&buf[..take]);
                Ok(take)
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let parts: [&[u8]; 4] = [b"", b"hello ", b"", b"world"];
        let mut slices: Vec<IoSlice<'_>> = parts.iter().map(|p| IoSlice::new(p)).collect();
        let mut w = Dribble(Vec::new());
        write_all_vectored(&mut w, &mut slices).unwrap();
        assert_eq!(w.0, b"hello world");

        let mut empty: Vec<IoSlice<'_>> = vec![IoSlice::new(b""), IoSlice::new(b"")];
        write_all_vectored(&mut w, &mut empty).unwrap();
        assert_eq!(w.0, b"hello world", "all-empty slice lists are a no-op");
    }

    #[test]
    fn stream_error_display_and_source() {
        let e: StreamError<std::io::Error> = StreamError::Code(CodeError::BlockSizeMismatch);
        assert!(e.to_string().contains("coding failure"));
        assert!(std::error::Error::source(&e).is_some());
        let e: StreamError<std::io::Error> = StreamError::Sink(std::io::Error::other("x"));
        assert!(std::error::Error::source(&e).is_some());
        let e: StreamError = StreamError::MissingGroups {
            got: 1,
            expected: 2,
        };
        assert!(std::error::Error::source(&e).is_none());
        assert!(e.to_string().contains("1 of 2"));
    }
}
