//! Streaming, bounded-memory codec drivers.
//!
//! Every [`ErasureCode`] consumes messages of one fixed length, so a
//! multi-gigabyte object is a *sequence* of coding groups — and nothing
//! about coding requires more than one group (per worker thread) to be
//! resident at a time. The paper's Hadoop prototype (§VI) exploits
//! exactly this, pumping HDFS files through a fixed-size buffer; the
//! drivers here are the Rust analogue:
//!
//! * [`StripeEncoder`] — push arbitrary-sized byte chunks, receive fully
//!   encoded coding groups through a [`GroupSink`] as soon as each is
//!   complete. Tail zero-padding happens once, inside [`StripeEncoder::finish`].
//! * [`StripeDecoder`] — feed one group's block availability at a time,
//!   receive exactly the object bytes that group carries (the driver
//!   truncates the final group's padding).
//! * [`StripeReconstructor`] — rebuild one block of every group from its
//!   repair plan's sources, group by group.
//!
//! Block and message buffers are recycled through a [`BufferPool`], so a
//! steady-state encode performs **no per-group allocation**: peak codec
//! memory is `O(one coding group × groups in flight)` regardless of the
//! object's size. [`StripeEncoder::with_concurrency`] additionally
//! overlaps whole groups across the persistent worker pool
//! ([`galloper_linalg::pool::global_pool`]) — no per-group thread spawns;
//! each group's encode already fans its output rows across the same pool
//! via [`galloper_linalg::apply_parallel_into`].
//!
//! The drivers feed the global [`galloper_obs`] registry:
//!
//! | metric | kind | meaning |
//! |---|---|---|
//! | `stream.groups` | counter | coding groups pushed through any driver |
//! | `stream.group_us` | histogram | per-group codec latency (encode, decode, or reconstruct) |
//! | `stream.pool.alloc` | counter | buffers newly allocated by pools |
//! | `stream.pool.reuse` | counter | buffer checkouts served from a pool's free list |
//! | `stream.pool.resident_bytes` | gauge | bytes currently held by live pools |
//! | `stream.pool.resident_peak_bytes` | gauge | high-water mark of the above |
//!
//! When a request-scoped operation is active (see [`galloper_obs::op`]),
//! each group additionally records a child span
//! (`stream.encode_group` / `stream.decode_group` /
//! `stream.reconstruct_group`) so a whole object's codec work hangs off
//! the originating DFS operation in the trace.

use std::sync::{Arc, OnceLock};
use std::time::Instant;

use galloper_obs::{counter, global, op, Histogram};

use crate::{CodeError, ErasureCode, ObjectManifest, RepairPlan};

use core::fmt;

/// The shared per-group latency histogram, cached so per-group cost is
/// an atomic bump, not a registry lookup.
fn group_hist() -> &'static Arc<Histogram> {
    static HIST: OnceLock<Arc<Histogram>> = OnceLock::new();
    HIST.get_or_init(|| global().histogram("stream.group_us"))
}

/// A per-group child span when an operation is active; `None` otherwise
/// so standalone codec runs don't mint operation ids.
fn group_span(name: &'static str) -> Option<op::OpSpan> {
    op::current().is_active().then(|| op::span(name, "stream"))
}

/// A small free-list of equally sized byte buffers.
///
/// `checkout` hands out a buffer of exactly `buf_len` bytes — recycled
/// from the free list when possible, freshly allocated (and counted in
/// the `stream.pool.*` metrics) otherwise. Recycled buffers keep their
/// previous contents; every driver in this module overwrites buffers
/// completely before use.
#[derive(Debug)]
pub struct BufferPool {
    buf_len: usize,
    free: Vec<Vec<u8>>,
    allocated: u64,
    reused: u64,
}

impl BufferPool {
    /// An empty pool of `buf_len`-byte buffers.
    pub fn new(buf_len: usize) -> BufferPool {
        BufferPool {
            buf_len,
            free: Vec::new(),
            allocated: 0,
            reused: 0,
        }
    }

    /// The fixed size of every buffer this pool manages.
    pub fn buf_len(&self) -> usize {
        self.buf_len
    }

    /// Buffers this pool has allocated over its lifetime — the pool's
    /// peak residency in units of buffers.
    pub fn allocated(&self) -> u64 {
        self.allocated
    }

    /// Checkouts served from the free list instead of the allocator.
    pub fn reused(&self) -> u64 {
        self.reused
    }

    /// Hands out one `buf_len`-byte buffer (contents unspecified).
    pub fn checkout(&mut self) -> Vec<u8> {
        if let Some(buf) = self.free.pop() {
            self.reused += 1;
            counter!("stream.pool.reuse", 1);
            return buf;
        }
        self.allocated += 1;
        counter!("stream.pool.alloc", 1);
        let resident = global().gauge("stream.pool.resident_bytes");
        resident.add(self.buf_len as i64);
        let peak = global().gauge("stream.pool.resident_peak_bytes");
        let now = resident.get();
        if now > peak.get() {
            peak.set(now);
        }
        vec![0u8; self.buf_len]
    }

    /// Returns a buffer to the free list for reuse.
    ///
    /// The buffer is resized back to `buf_len` so a caller that shrank it
    /// (e.g. truncating a tail group) cannot poison later checkouts.
    pub fn give_back(&mut self, mut buf: Vec<u8>) {
        buf.resize(self.buf_len, 0);
        self.free.push(buf);
    }
}

impl Drop for BufferPool {
    fn drop(&mut self) {
        global()
            .gauge("stream.pool.resident_bytes")
            .add(-((self.allocated as i64) * self.buf_len as i64));
    }
}

/// Errors from the streaming drivers.
///
/// `E` is the sink's error type; drivers without a sink use the default
/// [`core::convert::Infallible`], making those variants unconstructible.
#[derive(Debug)]
#[non_exhaustive]
pub enum StreamError<E = core::convert::Infallible> {
    /// The underlying code rejected an operation.
    Code(CodeError),
    /// The [`GroupSink`] failed to accept an encoded group.
    Sink(E),
    /// More groups were fed to a driver than its manifest records.
    TooManyGroups {
        /// Groups the manifest records.
        expected: usize,
    },
    /// A driver was finished before every group was processed.
    MissingGroups {
        /// Groups processed so far.
        got: usize,
        /// Groups the manifest records.
        expected: usize,
    },
}

impl<E: fmt::Display> fmt::Display for StreamError<E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StreamError::Code(e) => write!(f, "coding failure: {e}"),
            StreamError::Sink(e) => write!(f, "group sink failed: {e}"),
            StreamError::TooManyGroups { expected } => {
                write!(f, "stream already processed all {expected} groups")
            }
            StreamError::MissingGroups { got, expected } => {
                write!(f, "stream finished after {got} of {expected} groups")
            }
        }
    }
}

impl<E: std::error::Error + 'static> std::error::Error for StreamError<E> {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StreamError::Code(e) => Some(e),
            StreamError::Sink(e) => Some(e),
            StreamError::TooManyGroups { .. } | StreamError::MissingGroups { .. } => None,
        }
    }
}

impl<E> From<CodeError> for StreamError<E> {
    fn from(e: CodeError) -> Self {
        StreamError::Code(e)
    }
}

/// Receives encoded coding groups, in order, from a [`StripeEncoder`].
///
/// The encoder retains ownership of the block buffers (they return to its
/// [`BufferPool`] after the call), so a sink that needs the bytes beyond
/// the call must copy them — typically it writes them to files, sockets,
/// or a block store instead.
///
/// Any `FnMut(usize, &[Vec<u8>]) -> Result<(), E>` closure is a sink.
pub trait GroupSink {
    /// The sink's failure type (e.g. [`std::io::Error`] for file sinks).
    type Error;

    /// Accepts coding group `group` (0-based, strictly increasing);
    /// `blocks[b]` is block `b` of that group.
    ///
    /// # Errors
    ///
    /// Any sink-specific failure; the encoder surfaces it as
    /// [`StreamError::Sink`] and stops.
    fn group(&mut self, group: usize, blocks: &[Vec<u8>]) -> Result<(), Self::Error>;
}

impl<F, E> GroupSink for F
where
    F: FnMut(usize, &[Vec<u8>]) -> Result<(), E>,
{
    type Error = E;

    fn group(&mut self, group: usize, blocks: &[Vec<u8>]) -> Result<(), E> {
        self(group, blocks)
    }
}

/// How a batch of full messages is encoded into per-group block buffers.
///
/// Chosen once at construction: the serial strategy works for any code;
/// the overlapped strategy (selected by [`StripeEncoder::with_concurrency`])
/// requires `C: Sync` and encodes the batch's groups on the persistent
/// [`galloper_linalg::pool::global_pool`] workers.
type BatchFn<C> = fn(&C, &[Vec<u8>], &mut [Vec<Vec<u8>>]) -> Result<(), CodeError>;

fn encode_batch_serial<C: ErasureCode>(
    code: &C,
    batch: &[Vec<u8>],
    outs: &mut [Vec<Vec<u8>>],
) -> Result<(), CodeError> {
    for (msg, blocks) in batch.iter().zip(outs.iter_mut()) {
        let _span = group_span("stream.encode_group");
        let t0 = Instant::now();
        code.encode_into(msg, blocks)?;
        group_hist().record(t0.elapsed().as_micros() as u64);
    }
    Ok(())
}

fn encode_batch_parallel<C: ErasureCode + Sync>(
    code: &C,
    batch: &[Vec<u8>],
    outs: &mut [Vec<Vec<u8>>],
) -> Result<(), CodeError> {
    if batch.len() <= 1 {
        return encode_batch_serial(code, batch, outs);
    }
    // One result slot per group; the pool's workers (which persist across
    // batches — no per-group thread spawns) fill them in place. A group's
    // encode may itself fan rows across the same pool; the pool's
    // help-while-wait scheduling makes that nesting deadlock-free.
    let mut results: Vec<Result<(), CodeError>> = batch.iter().map(|_| Ok(())).collect();
    let tasks: Vec<galloper_linalg::pool::ScopedTask<'_>> = batch
        .iter()
        .zip(outs.iter_mut())
        .zip(results.iter_mut())
        .map(|((msg, blocks), slot)| {
            Box::new(move || {
                let _span = group_span("stream.encode_group");
                let t0 = Instant::now();
                *slot = code.encode_into(msg, blocks);
                group_hist().record(t0.elapsed().as_micros() as u64);
            }) as galloper_linalg::pool::ScopedTask<'_>
        })
        .collect();
    galloper_linalg::pool::global_pool().run(tasks);
    results.into_iter().collect()
}

/// Incremental encoder: pushes an arbitrary-length object through a
/// fixed-message [`ErasureCode`] one coding group at a time.
///
/// Input arrives via [`StripeEncoder::push`] in chunks of any size; each
/// time a full message accumulates, the group is encoded into recycled
/// buffers and handed to the [`GroupSink`]. [`StripeEncoder::finish`]
/// zero-pads the ragged tail (the one place in the workspace where
/// padding happens), flushes, and returns the [`ObjectManifest`].
///
/// Peak memory is `O(message + codeword)` per group in flight — constant
/// in the object's length.
///
/// # Examples
///
/// ```
/// use galloper_erasure::stream::StripeEncoder;
/// use galloper_rs::ReedSolomon;
///
/// let code = ReedSolomon::new(4, 2, 16)?; // message_len = 64
/// let mut stored: Vec<Vec<Vec<u8>>> = Vec::new();
/// let mut enc = StripeEncoder::new(&code, |_, blocks: &[Vec<u8>]| {
///     stored.push(blocks.to_vec());
///     Ok::<(), std::convert::Infallible>(())
/// });
/// enc.push(&[7u8; 100])?; // not a multiple of 64: tail is padded
/// let (manifest, _) = enc.finish()?;
/// assert_eq!(manifest.object_len, 100);
/// assert_eq!(manifest.num_groups, 2);
/// assert_eq!(stored.len(), 2);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct StripeEncoder<'c, C, S> {
    code: &'c C,
    sink: S,
    batch_fn: BatchFn<C>,
    concurrency: usize,
    messages: BufferPool,
    blocks: BufferPool,
    pending: Option<Vec<u8>>,
    fill: usize,
    batch: Vec<Vec<u8>>,
    object_len: usize,
    groups_emitted: usize,
}

impl<'c, C: ErasureCode, S: GroupSink> StripeEncoder<'c, C, S> {
    /// A serial encoder (one group in flight). Each group's encode still
    /// fans its output rows across threads inside the code itself.
    pub fn new(code: &'c C, sink: S) -> Self {
        StripeEncoder {
            code,
            sink,
            batch_fn: encode_batch_serial::<C>,
            concurrency: 1,
            messages: BufferPool::new(code.message_len()),
            blocks: BufferPool::new(code.block_len()),
            pending: None,
            fill: 0,
            batch: Vec::new(),
            object_len: 0,
            groups_emitted: 0,
        }
    }

    /// Bytes consumed so far.
    pub fn bytes_consumed(&self) -> usize {
        self.object_len
    }

    /// Coding groups already delivered to the sink.
    pub fn groups_emitted(&self) -> usize {
        self.groups_emitted
    }

    /// The pool recycling codeword block buffers (for residency stats).
    pub fn block_pool(&self) -> &BufferPool {
        &self.blocks
    }

    /// The pool recycling message buffers (for residency stats).
    pub fn message_pool(&self) -> &BufferPool {
        &self.messages
    }

    /// The sink, for inspection mid-stream.
    pub fn sink(&self) -> &S {
        &self.sink
    }

    /// Consumes `data`, emitting every coding group that completes.
    ///
    /// # Errors
    ///
    /// [`StreamError::Code`] or [`StreamError::Sink`]; after an error the
    /// encoder should be dropped.
    pub fn push(&mut self, mut data: &[u8]) -> Result<(), StreamError<S::Error>> {
        let msg_len = self.code.message_len();
        while !data.is_empty() {
            if self.pending.is_none() {
                self.pending = Some(self.messages.checkout());
            }
            let pending = self.pending.as_mut().expect("just filled");
            let take = (msg_len - self.fill).min(data.len());
            pending[self.fill..self.fill + take].copy_from_slice(&data[..take]);
            self.fill += take;
            self.object_len += take;
            data = &data[take..];
            if self.fill == msg_len {
                let full = self.pending.take().expect("pending message exists");
                self.fill = 0;
                self.batch.push(full);
                if self.batch.len() >= self.concurrency {
                    self.flush()?;
                }
            }
        }
        Ok(())
    }

    /// Zero-pads and emits the ragged tail (an empty object still
    /// occupies one all-zero group, exactly as
    /// [`ObjectCodec::encode_object`](crate::ObjectCodec::encode_object)
    /// does), flushes everything in flight, and returns the manifest
    /// along with the sink.
    ///
    /// # Errors
    ///
    /// [`StreamError::Code`] or [`StreamError::Sink`].
    pub fn finish(mut self) -> Result<(ObjectManifest, S), StreamError<S::Error>> {
        let tail_pending = self.fill > 0;
        let empty_object = self.object_len == 0 && self.batch.is_empty();
        if tail_pending || empty_object {
            let mut pending = match self.pending.take() {
                Some(buf) => buf,
                None => self.messages.checkout(),
            };
            // The single place tail padding happens: recycled buffers may
            // be dirty, so the unfilled remainder is zeroed here.
            pending[self.fill..].fill(0);
            self.fill = 0;
            self.batch.push(pending);
        }
        self.flush()?;
        let manifest = ObjectManifest {
            object_len: self.object_len,
            num_groups: self.groups_emitted,
        };
        Ok((manifest, self.sink))
    }

    fn flush(&mut self) -> Result<(), StreamError<S::Error>> {
        if self.batch.is_empty() {
            return Ok(());
        }
        let n = self.code.num_blocks();
        let batch = std::mem::take(&mut self.batch);
        let mut outs: Vec<Vec<Vec<u8>>> = batch
            .iter()
            .map(|_| (0..n).map(|_| self.blocks.checkout()).collect())
            .collect();
        let encoded = (self.batch_fn)(self.code, &batch, &mut outs);
        if let Err(e) = encoded {
            for blocks in outs {
                for b in blocks {
                    self.blocks.give_back(b);
                }
            }
            for msg in batch {
                self.messages.give_back(msg);
            }
            return Err(StreamError::Code(e));
        }
        for (msg, blocks) in batch.into_iter().zip(outs) {
            counter!("stream.groups", 1);
            let delivered = self.sink.group(self.groups_emitted, &blocks);
            for b in blocks {
                self.blocks.give_back(b);
            }
            self.messages.give_back(msg);
            delivered.map_err(StreamError::Sink)?;
            self.groups_emitted += 1;
        }
        Ok(())
    }
}

impl<'c, C: ErasureCode + Sync, S: GroupSink> StripeEncoder<'c, C, S> {
    /// Overlaps up to `groups` coding groups across the persistent
    /// worker pool ([`galloper_linalg::pool::global_pool`]).
    ///
    /// Peak memory grows to `O(one coding group × groups)`. Note each
    /// group's encode may itself be multi-threaded (the
    /// [`galloper_linalg::apply_parallel`] machinery, sharing the same
    /// pool), so modest values — 2 to 4 — are usually enough to hide
    /// per-group latency.
    #[must_use]
    pub fn with_concurrency(mut self, groups: usize) -> Self {
        self.concurrency = groups.max(1);
        self.batch_fn = encode_batch_parallel::<C>;
        self
    }
}

/// Incremental decoder: recovers an object group by group, truncating
/// the final group's padding so callers never see it.
///
/// Feed each group's block availability (in group order) to
/// [`StripeDecoder::next_group`]; it returns exactly the object bytes
/// that group carries. [`StripeDecoder::finish`] verifies every group
/// was consumed.
#[derive(Debug)]
pub struct StripeDecoder<'c, C> {
    code: &'c C,
    object_len: usize,
    num_groups: usize,
    next_group: usize,
    emitted: usize,
}

impl<'c, C: ErasureCode> StripeDecoder<'c, C> {
    /// A decoder for the object described by `manifest`.
    pub fn new(code: &'c C, manifest: ObjectManifest) -> Self {
        StripeDecoder {
            code,
            object_len: manifest.object_len,
            num_groups: manifest.num_groups,
            next_group: 0,
            emitted: 0,
        }
    }

    /// Groups the manifest records.
    pub fn groups_total(&self) -> usize {
        self.num_groups
    }

    /// Groups decoded so far.
    pub fn groups_done(&self) -> usize {
        self.next_group
    }

    /// Whether every group has been decoded.
    pub fn is_done(&self) -> bool {
        self.next_group == self.num_groups
    }

    /// Decodes the next group from its block availability (`None` marks
    /// an erased block) and returns the object bytes it carries — a full
    /// message for interior groups, the unpadded remainder for the tail.
    ///
    /// # Errors
    ///
    /// * [`StreamError::TooManyGroups`] once every group was decoded.
    /// * [`StreamError::Code`] if the group cannot be decoded.
    pub fn next_group(&mut self, blocks: &[Option<&[u8]>]) -> Result<Vec<u8>, StreamError> {
        if self.next_group >= self.num_groups {
            return Err(StreamError::TooManyGroups {
                expected: self.num_groups,
            });
        }
        let _span = group_span("stream.decode_group");
        let t0 = Instant::now();
        let mut payload = self.code.decode(blocks)?;
        group_hist().record(t0.elapsed().as_micros() as u64);
        counter!("stream.groups", 1);
        let take = payload.len().min(self.object_len - self.emitted);
        payload.truncate(take);
        self.emitted += take;
        self.next_group += 1;
        Ok(payload)
    }

    /// Confirms the stream is complete, returning the object length.
    ///
    /// # Errors
    ///
    /// [`StreamError::MissingGroups`] if groups remain undecoded.
    pub fn finish(self) -> Result<usize, StreamError> {
        if self.next_group != self.num_groups {
            return Err(StreamError::MissingGroups {
                got: self.next_group,
                expected: self.num_groups,
            });
        }
        Ok(self.object_len)
    }
}

/// Incremental repair driver: rebuilds one block of every coding group
/// from exactly its repair plan's sources.
///
/// The [`RepairPlan`] is resolved once at construction; callers feed the
/// plan's source blocks (in plan order) for each group and receive the
/// rebuilt block bytes for that group.
#[derive(Debug)]
pub struct StripeReconstructor<'c, C> {
    code: &'c C,
    plan: RepairPlan,
    num_groups: usize,
    done: usize,
}

impl<'c, C: ErasureCode> StripeReconstructor<'c, C> {
    /// A reconstructor for block `target` across `num_groups` groups.
    ///
    /// # Errors
    ///
    /// [`CodeError::BlockIndexOutOfRange`] if `target` is invalid.
    pub fn new(code: &'c C, target: usize, num_groups: usize) -> Result<Self, CodeError> {
        Ok(StripeReconstructor {
            plan: code.repair_plan(target)?,
            code,
            num_groups,
            done: 0,
        })
    }

    /// The repair plan driving the rebuild (read its
    /// [`sources`](RepairPlan::sources) to know what to feed).
    pub fn plan(&self) -> &RepairPlan {
        &self.plan
    }

    /// Groups rebuilt so far.
    pub fn groups_done(&self) -> usize {
        self.done
    }

    /// Rebuilds the target block of the next group from `sources`
    /// (plan-ordered `(block index, bytes)` pairs).
    ///
    /// # Errors
    ///
    /// * [`StreamError::TooManyGroups`] once every group was rebuilt.
    /// * [`StreamError::Code`] on wrong sources or sizes.
    pub fn next_group(&mut self, sources: &[(usize, &[u8])]) -> Result<Vec<u8>, StreamError> {
        if self.done >= self.num_groups {
            return Err(StreamError::TooManyGroups {
                expected: self.num_groups,
            });
        }
        let _span = group_span("stream.reconstruct_group");
        let t0 = Instant::now();
        let rebuilt = self.code.reconstruct(self.plan.target(), sources)?;
        group_hist().record(t0.elapsed().as_micros() as u64);
        counter!("stream.groups", 1);
        self.done += 1;
        Ok(rebuilt)
    }

    /// Confirms every group's block was rebuilt.
    ///
    /// # Errors
    ///
    /// [`StreamError::MissingGroups`] if groups remain unprocessed.
    pub fn finish(self) -> Result<(), StreamError> {
        if self.done != self.num_groups {
            return Err(StreamError::MissingGroups {
                got: self.done,
                expected: self.num_groups,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BlockRole, DataLayout, LinearCode};
    use galloper_linalg::Matrix;

    /// The same tiny XOR code the object tests use: k=2, n=3, N=1.
    fn xor_code(stripe: usize) -> LinearCode {
        let generator = Matrix::from_rows(&[vec![1, 0], vec![0, 1], vec![1, 1]]);
        LinearCode::new(
            generator,
            2,
            vec![BlockRole::Data, BlockRole::Data, BlockRole::GlobalParity],
            DataLayout::systematic(2, 3, 1),
            vec![
                RepairPlan::new(0, vec![1, 2]),
                RepairPlan::new(1, vec![0, 2]),
                RepairPlan::new(2, vec![0, 1]),
            ],
            stripe,
        )
        .unwrap()
    }

    fn collect_groups(
        code: &LinearCode,
        data: &[u8],
        concurrency: usize,
        chunk: usize,
    ) -> (ObjectManifest, Vec<Vec<Vec<u8>>>) {
        let mut groups: Vec<Vec<Vec<u8>>> = Vec::new();
        let sink = |g: usize, blocks: &[Vec<u8>]| -> Result<(), core::convert::Infallible> {
            assert_eq!(g, groups.len(), "groups arrive in order");
            groups.push(blocks.to_vec());
            Ok(())
        };
        let mut enc = StripeEncoder::new(code, sink).with_concurrency(concurrency);
        for piece in data.chunks(chunk.max(1)) {
            enc.push(piece).unwrap();
        }
        let (manifest, _) = enc.finish().unwrap();
        (manifest, groups)
    }

    #[test]
    fn streaming_matches_oneshot_for_ragged_and_empty_objects() {
        let code = xor_code(4); // message_len = 8
        let codec = crate::ObjectCodec::new(code.clone());
        for len in [0usize, 1, 7, 8, 9, 16, 17, 100] {
            let data: Vec<u8> = (0..len).map(|i| (i * 13 + 5) as u8).collect();
            let oneshot = codec.encode_object(&data).unwrap();
            for concurrency in [1, 3] {
                for chunk in [1, 3, 8, 64] {
                    let (manifest, groups) = collect_groups(&code, &data, concurrency, chunk);
                    assert_eq!(manifest.object_len, oneshot.manifest.object_len);
                    assert_eq!(manifest.num_groups, oneshot.manifest.num_groups);
                    assert_eq!(groups, oneshot.groups, "len={len} chunk={chunk}");
                }
            }
        }
    }

    #[test]
    fn pool_residency_is_bounded_by_groups_in_flight() {
        let code = xor_code(4);
        let data: Vec<u8> = (0..800).map(|i| i as u8).collect(); // 100 groups
        let sink = |_: usize, _: &[Vec<u8>]| -> Result<(), core::convert::Infallible> { Ok(()) };
        let mut enc = StripeEncoder::new(&code, sink);
        enc.push(&data).unwrap();
        // Serial: exactly one message buffer and one codeword's blocks,
        // ever, despite 100 groups.
        assert_eq!(enc.message_pool().allocated(), 1);
        assert_eq!(enc.block_pool().allocated(), code.num_blocks() as u64);
        assert!(enc.message_pool().reused() >= 98);
        let (manifest, _) = enc.finish().unwrap();
        assert_eq!(manifest.num_groups, 100);
    }

    #[test]
    fn concurrent_pool_residency_scales_with_concurrency() {
        let code = xor_code(4);
        let data: Vec<u8> = (0..800).map(|i| (i * 7) as u8).collect();
        let sink = |_: usize, _: &[Vec<u8>]| -> Result<(), core::convert::Infallible> { Ok(()) };
        let mut enc = StripeEncoder::new(&code, sink).with_concurrency(4);
        enc.push(&data).unwrap();
        let (_, _) = {
            let e = enc;
            assert!(e.message_pool().allocated() <= 4 + 1);
            assert!(e.block_pool().allocated() <= (4 + 1) * code.num_blocks() as u64);
            e.finish().unwrap()
        };
    }

    #[test]
    fn decoder_truncates_tail_and_tracks_groups() {
        let code = xor_code(4);
        let data: Vec<u8> = (0..19).map(|i| 250 - i as u8).collect(); // 3 groups, ragged
        let (manifest, groups) = collect_groups(&code, &data, 1, 19);
        let mut dec = StripeDecoder::new(&code, manifest);
        let mut out = Vec::new();
        for blocks in &groups {
            let avail: Vec<Option<&[u8]>> = blocks.iter().map(|b| Some(b.as_slice())).collect();
            out.extend_from_slice(&dec.next_group(&avail).unwrap());
        }
        assert!(dec.is_done());
        let avail: Vec<Option<&[u8]>> = groups[0].iter().map(|b| Some(b.as_slice())).collect();
        assert!(matches!(
            dec.next_group(&avail),
            Err(StreamError::TooManyGroups { expected: 3 })
        ));
        assert_eq!(dec.finish().unwrap(), 19);
        assert_eq!(out, data);
    }

    #[test]
    fn decoder_finish_rejects_missing_groups() {
        let code = xor_code(4);
        let manifest = ObjectManifest {
            object_len: 16,
            num_groups: 2,
        };
        let dec = StripeDecoder::new(&code, manifest);
        assert!(matches!(
            dec.finish(),
            Err(StreamError::MissingGroups {
                got: 0,
                expected: 2
            })
        ));
    }

    #[test]
    fn reconstructor_rebuilds_each_block_groupwise() {
        let code = xor_code(4);
        let data: Vec<u8> = (0..24).map(|i| (i * 3 + 1) as u8).collect();
        let (manifest, groups) = collect_groups(&code, &data, 1, 24);
        for target in 0..3 {
            let mut rec = StripeReconstructor::new(&code, target, manifest.num_groups).unwrap();
            let src_ids: Vec<usize> = rec.plan().sources().to_vec();
            for blocks in &groups {
                let sources: Vec<(usize, &[u8])> =
                    src_ids.iter().map(|&s| (s, blocks[s].as_slice())).collect();
                let rebuilt = rec.next_group(&sources).unwrap();
                assert_eq!(rebuilt, blocks[target]);
            }
            rec.finish().unwrap();
        }
    }

    #[test]
    fn sink_errors_surface_and_buffers_recycle() {
        let code = xor_code(4);
        let mut calls = 0usize;
        let sink = move |_: usize, _: &[Vec<u8>]| -> Result<(), &'static str> {
            calls += 1;
            if calls >= 2 {
                Err("disk full")
            } else {
                Ok(())
            }
        };
        let mut enc = StripeEncoder::new(&code, sink);
        let err = enc.push(&[9u8; 64]).expect_err("second group must fail");
        assert!(matches!(err, StreamError::Sink("disk full")));
    }

    #[test]
    fn stream_error_display_and_source() {
        let e: StreamError<std::io::Error> = StreamError::Code(CodeError::BlockSizeMismatch);
        assert!(e.to_string().contains("coding failure"));
        assert!(std::error::Error::source(&e).is_some());
        let e: StreamError<std::io::Error> = StreamError::Sink(std::io::Error::other("x"));
        assert!(std::error::Error::source(&e).is_some());
        let e: StreamError = StreamError::MissingGroups {
            got: 1,
            expected: 2,
        };
        assert!(std::error::Error::source(&e).is_none());
        assert!(e.to_string().contains("1 of 2"));
    }
}
