//! The shared error type for coding operations.

use core::fmt;

/// Errors returned by [`ErasureCode`](crate::ErasureCode) operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CodeError {
    /// The input length is not a multiple of the code's message
    /// granularity (`k · N` stripes of equal size).
    InvalidDataLength {
        /// Length supplied by the caller.
        got: usize,
        /// The length must be a multiple of this.
        multiple_of: usize,
    },
    /// The number of block slots passed to `decode` does not match the
    /// code's block count.
    WrongBlockCount {
        /// Slots supplied.
        got: usize,
        /// Blocks the code produces.
        expected: usize,
    },
    /// Supplied blocks do not all have the same length, or their length is
    /// not compatible with the code's stripe structure.
    BlockSizeMismatch,
    /// The set of available blocks cannot be decoded (too many erasures or
    /// an unrecoverable pattern for a non-MDS code).
    Undecodable {
        /// Indices of the available blocks.
        available: Vec<usize>,
    },
    /// `reconstruct` was given a different set of source blocks than the
    /// repair plan requires.
    WrongSources {
        /// Block indices the plan requires, in order.
        expected: Vec<usize>,
        /// Block indices that were supplied.
        got: Vec<usize>,
    },
    /// A block index is out of range for this code.
    BlockIndexOutOfRange {
        /// The offending index.
        index: usize,
        /// Number of blocks in the code.
        num_blocks: usize,
    },
}

impl fmt::Display for CodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodeError::InvalidDataLength { got, multiple_of } => write!(
                f,
                "data length {got} is not a multiple of {multiple_of} bytes"
            ),
            CodeError::WrongBlockCount { got, expected } => {
                write!(f, "got {got} block slots, code has {expected} blocks")
            }
            CodeError::BlockSizeMismatch => {
                f.write_str("blocks have inconsistent or incompatible sizes")
            }
            CodeError::Undecodable { available } => write!(
                f,
                "available blocks {available:?} cannot be decoded to the original data"
            ),
            CodeError::WrongSources { expected, got } => write!(
                f,
                "reconstruction requires source blocks {expected:?}, got {got:?}"
            ),
            CodeError::BlockIndexOutOfRange { index, num_blocks } => {
                write!(
                    f,
                    "block index {index} out of range (code has {num_blocks} blocks)"
                )
            }
        }
    }
}

impl std::error::Error for CodeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_informative() {
        let e = CodeError::InvalidDataLength {
            got: 10,
            multiple_of: 28,
        };
        let s = e.to_string();
        assert!(s.contains("10") && s.contains("28"));
        assert!(s.chars().next().unwrap().is_lowercase());
    }

    #[test]
    fn error_trait_object_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CodeError>();
    }
}
