//! The [`Observed`] wrapper: metric side effects and transparency.

use galloper_erasure::{ErasureCode, Observed};
use galloper_obs::global;
use galloper_rs::ReedSolomon;

#[test]
fn observed_counts_operations_and_symbols() {
    let code = Observed::new("rs_test_observe", ReedSolomon::new(4, 2, 64).unwrap());
    let data = vec![7u8; code.message_len()];
    let blocks = code.encode(&data).unwrap();
    let avail: Vec<Option<&[u8]>> = blocks.iter().map(|b| Some(b.as_slice())).collect();
    let decoded = code.decode(&avail).unwrap();
    assert_eq!(decoded, data);

    let plan = code.repair_plan(0).unwrap();
    let sources: Vec<(usize, &[u8])> = plan
        .sources()
        .iter()
        .map(|&s| (s, blocks[s].as_slice()))
        .collect();
    let rebuilt = code.reconstruct(0, &sources).unwrap();
    assert_eq!(rebuilt, blocks[0]);

    let g = global();
    assert_eq!(g.counter("erasure.rs_test_observe.encode.calls").get(), 1);
    assert_eq!(
        g.counter("erasure.rs_test_observe.encode.bytes").get(),
        data.len() as u64
    );
    // RS repairs read k = 4 symbols.
    assert_eq!(
        g.counter("erasure.rs_test_observe.repair.symbols_read")
            .get(),
        4
    );
    assert_eq!(
        g.counter("erasure.rs_test_observe.reconstruct.bytes_read")
            .get(),
        4 * code.block_len() as u64
    );
    assert!(g.histogram("erasure.rs_test_observe.encode_us").count() >= 1);
    // The underlying engine's family-agnostic counters moved too.
    assert!(g.counter("erasure.encode.calls").get() >= 1);
}

#[test]
fn observed_is_transparent() {
    let inner = ReedSolomon::new(4, 2, 64).unwrap();
    let code = Observed::new("rs_transparent", inner.clone());
    assert_eq!(code.num_blocks(), inner.num_blocks());
    assert_eq!(code.num_data_blocks(), inner.num_data_blocks());
    assert_eq!(code.message_len(), inner.message_len());
    assert_eq!(code.block_len(), inner.block_len());
    assert_eq!(code.storage_overhead(), inner.storage_overhead());
    assert_eq!(code.layout(), inner.layout());
    assert_eq!(code.block_role(0), inner.block_role(0));
    assert!(code.can_decode(&vec![true; inner.num_blocks()]));
    assert_eq!(code.inner().num_blocks(), inner.num_blocks());
    assert_eq!(code.into_inner().num_blocks(), inner.num_blocks());
}
