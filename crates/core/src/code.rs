//! The [`Galloper`] code type.

use galloper_erasure::{ConstructionError, DataLayout, LinearCode, RepairPlan};

use crate::construct;
use crate::{GalloperParams, ParamsError, StripeAllocation, WeightError};

use core::fmt;

/// Errors from building a [`Galloper`] code.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum GalloperError {
    /// Invalid `(k, l, g)`.
    Params(ParamsError),
    /// Weight assignment or rationalization failed.
    Weights(WeightError),
    /// Generator assembly or validation failed.
    Construction(ConstructionError),
}

impl fmt::Display for GalloperError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GalloperError::Params(e) => write!(f, "invalid parameters: {e}"),
            GalloperError::Weights(e) => write!(f, "weight assignment failed: {e}"),
            GalloperError::Construction(e) => write!(f, "construction failed: {e}"),
        }
    }
}

impl std::error::Error for GalloperError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GalloperError::Params(e) => Some(e),
            GalloperError::Weights(e) => Some(e),
            GalloperError::Construction(e) => Some(e),
        }
    }
}

impl From<ParamsError> for GalloperError {
    fn from(e: ParamsError) -> Self {
        GalloperError::Params(e)
    }
}

impl From<WeightError> for GalloperError {
    fn from(e: WeightError) -> Self {
        GalloperError::Weights(e)
    }
}

impl From<ConstructionError> for GalloperError {
    fn from(e: ConstructionError) -> Self {
        GalloperError::Construction(e)
    }
}

/// A `(k, l, g)` Galloper code: the locality and failure tolerance of a
/// Pyramid code, with original data spread over **all** blocks in
/// proportion to per-server weights.
///
/// Construct with [`Galloper::uniform`] (homogeneous servers),
/// [`Galloper::from_performances`] (measure → LP → rationalize), or
/// [`Galloper::with_allocation`] (explicit stripe counts).
///
/// # Examples
///
/// ```
/// use galloper::Galloper;
/// use galloper_erasure::ErasureCode;
///
/// // The paper's (4, 2, 1) code on homogeneous servers: every one of the
/// // 7 blocks holds 4/7 of a block of original data.
/// let code = Galloper::uniform(4, 2, 1, 1024)?;
/// let layout = code.layout();
/// for b in 0..7 {
///     assert!((layout.data_fraction(b) - 4.0 / 7.0).abs() < 1e-12);
/// }
///
/// // Repair keeps Pyramid locality: a group member reads 2 blocks.
/// assert_eq!(code.repair_plan(0)?.fan_in(), 2);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct Galloper {
    inner: LinearCode,
    params: GalloperParams,
    alloc: StripeAllocation,
}

impl Galloper {
    /// Builds a Galloper code from an explicit stripe allocation.
    ///
    /// # Errors
    ///
    /// [`GalloperError`] if the allocation violates an invariant or the
    /// generator fails validation.
    pub fn with_allocation(
        alloc: StripeAllocation,
        stripe_size: usize,
    ) -> Result<Self, GalloperError> {
        // Construction runs weight rationalization plus full generator
        // validation — worth a latency histogram of its own.
        let _t = galloper_obs::global().timer("galloper.construct_us");
        galloper_obs::counter!("galloper.constructions", 1);
        let params = alloc.params();
        let c = construct::build(params, &alloc)?;
        let n = params.num_blocks();
        let roles = (0..n).map(|b| params.role(b)).collect();
        let layout = DataLayout::new(c.assignments, alloc.resolution());
        let plans = (0..n)
            .map(|b| RepairPlan::new(b, Self::repair_sources(params, b)))
            .collect();
        let inner = LinearCode::new(c.generator, params.k(), roles, layout, plans, stripe_size)?;
        Ok(Galloper {
            inner,
            params,
            alloc,
        })
    }

    /// Builds the code for homogeneous servers at the smallest exact
    /// stripe resolution.
    ///
    /// # Errors
    ///
    /// [`GalloperError`] for invalid `(k, l, g)` or `stripe_size == 0`.
    pub fn uniform(
        k: usize,
        l: usize,
        g: usize,
        stripe_size: usize,
    ) -> Result<Self, GalloperError> {
        let params = GalloperParams::new(k, l, g)?;
        let alloc = StripeAllocation::uniform(params);
        Galloper::with_allocation(alloc, stripe_size)
    }

    /// Builds the code for heterogeneous servers: solves the paper's
    /// throttling LP on `performances` and rationalizes the weights at
    /// `resolution` stripes per block.
    ///
    /// # Errors
    ///
    /// [`GalloperError`] on invalid parameters, performances, or
    /// unroundable weights.
    pub fn from_performances(
        k: usize,
        l: usize,
        g: usize,
        performances: &[f64],
        resolution: usize,
        stripe_size: usize,
    ) -> Result<Self, GalloperError> {
        let params = GalloperParams::new(k, l, g)?;
        let alloc = StripeAllocation::from_performances(params, performances, resolution)?;
        Galloper::with_allocation(alloc, stripe_size)
    }

    /// Pyramid-equivalent repair sources for block `b` in grouped order.
    fn repair_sources(params: GalloperParams, b: usize) -> Vec<usize> {
        if params.l() == 0 {
            // MDS repair: first k other blocks.
            return (0..params.num_blocks())
                .filter(|&x| x != b)
                .take(params.k())
                .collect();
        }
        match params.group_of(b) {
            Some(j) => params.group_blocks(j).filter(|&x| x != b).collect(),
            None => (0..params.k())
                .map(|c| params.data_block_position(c))
                .collect(),
        }
    }

    /// The `(k, l, g)` parameters.
    pub fn params(&self) -> GalloperParams {
        self.params
    }

    /// The stripe allocation (realized weights) this code was built from.
    pub fn allocation(&self) -> &StripeAllocation {
        &self.alloc
    }

    /// The underlying generic linear code.
    pub fn as_linear(&self) -> &LinearCode {
        &self.inner
    }

    /// Overrides the number of threads used by bulk kernels.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.inner = self.inner.with_threads(threads);
        self
    }
}

galloper_erasure::delegate_erasure_code!(Galloper, inner);

impl galloper_erasure::AsLinearCode for Galloper {
    fn as_linear_code(&self) -> &LinearCode {
        &self.inner
    }
}
