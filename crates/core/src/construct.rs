//! Generator-matrix assembly for Galloper codes.
//!
//! Both cases are a single symbol-remapping pass:
//!
//! * `l = 0` (§IV-B): remap the stripe expansion of a `(k, g)` MDS code.
//! * `l > 0` (§V): remap the stripe expansion of the `(k, l, g)` *Pyramid*
//!   generator directly.
//!
//! The paper presents the general case as a two-step procedure (first a
//! `(k, 0, g)` Galloper code with uplifted weights, then a per-group remap
//! onto the local parity blocks). Performing one global basis change over
//! the Pyramid stripe generator reaches the same code family with a
//! stronger guarantee, via the following argument.
//!
//! In the expanded Pyramid generator `P ⊗ I_N`, the stripes of one row
//! `s` form a Pyramid codeword over the row's k data coordinates: every
//! stripe of row `s` is a combination of the k data stripes of row `s`.
//! A set of `k` blocks is an *information set* of the Pyramid code
//! whenever it contains at most `k/l` members of each local group (a
//! group's `k/l + 1` members only span `k/l` dimensions), because local
//! groups resolve their own members and the Cauchy global rows resolve
//! any remaining deficiency. The sequential selection walks blocks in
//! grouped order, so each group's picks form one contiguous cyclic run of
//! length `Σ_group m_i ≤ (k/l)·N`, touching each row at most `k/l` times —
//! and the total `k·N` makes every row exactly `k`-selected. Hence every
//! row's selected stripes are an information set, `G_{g0}` is invertible,
//! and the remapped code's space is *exactly* the Pyramid code's: the
//! same failure tolerance and the same per-group repair relations, for
//! every valid weight allocation (not only aligned ones).

use galloper_erasure::remap::{remap_basis, sequential_selection};
use galloper_erasure::ConstructionError;
use galloper_linalg::Matrix;
use galloper_pyramid::Pyramid;

use crate::{GalloperParams, StripeAllocation};

/// The assembled stripe-level generator (stored order) and the per-block
/// original-stripe assignments for the layout.
#[derive(Debug, Clone)]
pub(crate) struct Construction {
    pub generator: Matrix,
    pub assignments: Vec<Vec<usize>>,
}

/// Builds the generator for the given allocation.
pub(crate) fn build(
    params: GalloperParams,
    alloc: &StripeAllocation,
) -> Result<Construction, ConstructionError> {
    let big_n = alloc.resolution();
    let base = base_generator(params)?;
    let gg = base.kron_identity(big_n);
    let selections = sequential_selection(alloc.counts(), big_n);
    let rc = remap_basis(&gg, &selections, big_n)?;
    Ok(Construction {
        generator: rc.generator,
        assignments: rc.assignments,
    })
}

/// The block-level generator being remapped: a `(k, g)` MDS code for the
/// special case, the `(k, l, g)` Pyramid generator (grouped block order)
/// otherwise.
fn base_generator(params: GalloperParams) -> Result<Matrix, ConstructionError> {
    let (k, l, g) = (params.k(), params.l(), params.g());
    if l == 0 {
        Ok(Matrix::identity(k).vstack(&Matrix::cauchy(g, k)))
    } else {
        let pyramid = Pyramid::new(k, l, g, 1)?;
        let block_gen = pyramid.as_linear().generator().clone();
        // Sanity: Pyramid's grouped block order matches ours.
        debug_assert_eq!(block_gen.rows(), params.num_blocks());
        Ok(block_gen)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_4_construction_shape() {
        // (4, 0, 1) with weights (6,6,6,6,4)/7: the Fig. 3/4 example.
        let params = GalloperParams::new(4, 0, 1).unwrap();
        let w = [6.0 / 7.0, 6.0 / 7.0, 6.0 / 7.0, 6.0 / 7.0, 4.0 / 7.0];
        let alloc = StripeAllocation::from_weights(params, &w, 7).unwrap();
        let c = build(params, &alloc).unwrap();
        assert_eq!(c.generator.rows(), 35);
        assert_eq!(c.generator.cols(), 28);
        assert_eq!(c.generator.rank(), 28);
        // Block 0 holds S1..S6 (0-based 0..5), block 4 holds S25..S28.
        assert_eq!(c.assignments[0], vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(c.assignments[4], vec![24, 25, 26, 27]);
        // Data rows are identity rows.
        for (b, assign) in c.assignments.iter().enumerate() {
            for (pos, &orig) in assign.iter().enumerate() {
                let row = c.generator.row(b * 7 + pos);
                for (j, &v) in row.iter().enumerate() {
                    assert_eq!(v, u8::from(j == orig), "block {b} pos {pos}");
                }
            }
        }
    }

    #[test]
    fn figure_5_6_general_construction() {
        // (4, 2, 1) uniform: N = 7, every block holds 4 data stripes.
        let params = GalloperParams::new(4, 2, 1).unwrap();
        let alloc = StripeAllocation::uniform(params);
        let c = build(params, &alloc).unwrap();
        assert_eq!(c.generator.rows(), 49);
        assert_eq!(c.generator.cols(), 28);
        assert_eq!(c.generator.rank(), 28);
        for (b, assign) in c.assignments.iter().enumerate() {
            assert_eq!(assign.len(), 4, "every block holds 4 data stripes");
            for (pos, &orig) in assign.iter().enumerate() {
                let row = c.generator.row(b * 7 + pos);
                for (j, &v) in row.iter().enumerate() {
                    assert_eq!(v, u8::from(j == orig), "block {b} pos {pos}");
                }
            }
        }
    }

    #[test]
    fn heterogeneous_counts_still_form_a_basis() {
        // The alignment-independence property the single global remap
        // buys: wildly uneven counts still produce a full-rank basis.
        let params = GalloperParams::new(4, 2, 1).unwrap();
        let alloc =
            StripeAllocation::from_performances(params, &[9.0, 0.3, 1.0, 0.7, 2.0, 1.1, 3.0], 24)
                .unwrap();
        let c = build(params, &alloc).unwrap();
        assert_eq!(c.generator.rank(), 4 * 24);
    }

    #[test]
    fn local_parity_relation_survives_remapping() {
        // Every stripe of a local parity block must be expressible from
        // its group peers' stripes — the relation repair plans rely on.
        let params = GalloperParams::new(4, 2, 1).unwrap();
        let alloc = StripeAllocation::uniform(params);
        let c = build(params, &alloc).unwrap();
        let big_n = 7;
        // Group 0 = blocks 0,1 (data) and 2 (local parity).
        let group_rows: Vec<usize> = (0..2 * big_n).collect();
        let sub = c.generator.select_rows(&group_rows);
        for s in 0..big_n {
            let target: Vec<galloper_gf::Gf256> = c
                .generator
                .row(2 * big_n + s)
                .iter()
                .map(|&v| galloper_gf::Gf256::new(v))
                .collect();
            assert!(
                sub.express_row(&target).is_some(),
                "local parity stripe {s} not in group row space"
            );
        }
    }
}
