//! Weight assignment: from server performance measurements to per-block
//! stripe counts.
//!
//! The pipeline has three stages, matching the paper:
//!
//! 1. **Throttling LP** (§IV-C for `l = 0`, §V-B for `l > 0`):
//!    [`solve_weights`] finds the minimal performance reduction `d_i` for
//!    each server such that the induced weights
//!    `w_i = k(p_i − d_i) / Σ(p_j − d_j)` satisfy every capacity
//!    constraint (`w_i ≤ 1`, plus the group-level constraints that make
//!    the two-step construction possible).
//! 2. **Water-filling cross-check**: [`water_filling`] computes the same
//!    answer for `l = 0` in closed form; tests verify the LP against it.
//! 3. **Rationalization** (§IV-C "round up"): [`StripeAllocation`] rounds
//!    the real-valued weights onto a stripe grid of resolution `N`,
//!    preserving the construction's divisibility invariants.

use galloper_lp::{LinearProgram, LpError, Relation};

use crate::GalloperParams;

use core::fmt;

/// Errors from weight assignment.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum WeightError {
    /// Performance vector length differs from the block count.
    WrongLength {
        /// Entries supplied.
        got: usize,
        /// Blocks in the code.
        expected: usize,
    },
    /// Performances must be positive and finite.
    InvalidPerformance,
    /// The stripe resolution must be at least 1.
    ZeroResolution,
    /// The underlying LP failed (should not happen for valid inputs; kept
    /// for diagnosis).
    Lp(LpError),
    /// Rationalization could not satisfy the divisibility constraints at
    /// this resolution.
    Unroundable,
}

impl fmt::Display for WeightError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WeightError::WrongLength { got, expected } => {
                write!(
                    f,
                    "got {got} performance entries, code has {expected} blocks"
                )
            }
            WeightError::InvalidPerformance => {
                f.write_str("server performances must be positive and finite")
            }
            WeightError::ZeroResolution => f.write_str("stripe resolution must be at least 1"),
            WeightError::Lp(e) => write!(f, "weight LP failed: {e}"),
            WeightError::Unroundable => {
                f.write_str("weights cannot be rounded onto this stripe grid")
            }
        }
    }
}

impl std::error::Error for WeightError {}

impl From<LpError> for WeightError {
    fn from(e: LpError) -> Self {
        WeightError::Lp(e)
    }
}

/// Solves the paper's throttling LP and returns the target weights
/// `w_i ∈ [0, 1]` (grouped block order, summing to `k`).
///
/// For `l = 0` this is the program of §IV-C; for `l > 0` the program of
/// §V-B with its per-group constraints. `performances[i]` is the
/// measurement `p_i` of the server hosting block `i` (any positive unit:
/// MB/s of sequential read, task throughput, …).
///
/// # Errors
///
/// [`WeightError`] on shape/positivity violations; `Lp` if the solver
/// fails (the program is always feasible for valid inputs: `d = p` is a
/// feasible point of every constraint, so this indicates a bug).
pub fn solve_weights(
    params: GalloperParams,
    performances: &[f64],
) -> Result<Vec<f64>, WeightError> {
    let n = params.num_blocks();
    if performances.len() != n {
        return Err(WeightError::WrongLength {
            got: performances.len(),
            expected: n,
        });
    }
    if !performances.iter().all(|&p| p.is_finite() && p > 0.0) {
        return Err(WeightError::InvalidPerformance);
    }
    let k = params.k() as f64;
    let p_total: f64 = performances.iter().sum();

    // Adds the paper's capacity constraints over the first n variables of
    // an LP with `vars` total variables (extra variables get coefficient
    // zero, enabling the two-phase formulation below).
    let add_capacity_constraints = |lp: &mut LinearProgram, vars: usize| {
        // w_i <= 1:  k(p_i - d_i) <= Σ(p - d)
        //   ⟺  Σ_j d_j - k·d_i <= Σp - k·p_i.
        for i in 0..n {
            let mut coeffs = vec![0.0; vars];
            coeffs[..n].fill(1.0);
            coeffs[i] -= k;
            lp.constraint(&coeffs, Relation::Le, p_total - k * performances[i]);
        }
        if params.l() > 0 {
            let q = params.group_size() as f64;
            let l = params.l() as f64;
            for j in 0..params.l() {
                let group = params.group_blocks(j);
                let group_p: f64 = group.clone().map(|i| performances[i]).sum();

                // Step-1 weight w_ig <= 1, aggregated per group (§V-B):
                // l·Σ_group(p - d) <= Σ_all(p - d).
                let mut coeffs = vec![0.0; vars];
                coeffs[..n].fill(1.0);
                for i in group.clone() {
                    coeffs[i] -= l;
                }
                lp.constraint(&coeffs, Relation::Le, p_total - l * group_p);

                // Step-2 weight w_il <= 1 for each member:
                // (k/l)(p_i - d_i) <= Σ_group(p - d).
                for i in group.clone() {
                    let mut coeffs = vec![0.0; vars];
                    for m in group.clone() {
                        coeffs[m] = 1.0;
                    }
                    coeffs[i] -= q;
                    lp.constraint(&coeffs, Relation::Le, group_p - q * performances[i]);
                }
            }
        }
        // 0 <= d_i <= p_i.
        for (i, &p) in performances.iter().enumerate() {
            lp.bound(i, p);
        }
    };

    // Phase A (the paper's program): minimize total throttling Σ d_i,
    // i.e. maximize the usable aggregate S* = Σ(p_i − d_i).
    let mut lp = LinearProgram::minimize(&vec![1.0; n]);
    add_capacity_constraints(&mut lp, n);
    let phase_a = lp.solve()?;
    let s_star = p_total - phase_a.objective;

    // Phase B: the LP's optimal *value* S* is unique, but its vertex
    // solutions are not — the simplex may throttle one group member fully
    // instead of spreading. Distribute S* over blocks proportionally to
    // performance, subject to the same caps (nested water-filling): this
    // is deterministic and monotone in performance within every group.
    let effective = distribute_effective(params, performances, s_star);
    let total: f64 = effective.iter().sum();
    Ok(effective
        .iter()
        .map(|&e| (k * e / total).clamp(0.0, 1.0))
        .collect())
}

/// Splits the optimal usable aggregate `s` over blocks proportionally to
/// performance under the paper's caps: per-block `e_i ≤ min(p_i, s/k)`,
/// per-group totals `≤ min(s/l, C_j)` where `C_j` is the group's own
/// water-filling capacity, and within-group member caps `e_i ≤ B_j·l/k`.
fn distribute_effective(params: GalloperParams, perfs: &[f64], s: f64) -> Vec<f64> {
    let k = params.k() as f64;
    let n = params.num_blocks();
    if params.l() == 0 {
        return proportional_capped(perfs, &vec![s / k; n], s);
    }
    let l = params.l() as f64;
    let q = params.group_size();

    // Top level: budgets for groups (capacity min(s/l, C_j)) and globals
    // (capacity min(p, s/k)).
    let group_perfs: Vec<Vec<f64>> = (0..params.l())
        .map(|j| params.group_blocks(j).map(|i| perfs[i]).collect())
        .collect();
    let mut item_perfs: Vec<f64> = group_perfs.iter().map(|g| g.iter().sum()).collect();
    let mut item_caps: Vec<f64> = group_perfs
        .iter()
        .map(|g| (s / l).min(water_level(q, g)))
        .collect();
    for t in 0..params.g() {
        let p = perfs[params.global_parity_position(t)];
        item_perfs.push(p);
        item_caps.push(p.min(s / k));
    }
    let budgets = proportional_capped(&item_perfs, &item_caps, s);

    // Within each group: proportional with caps min(p_i, B_j/q).
    let mut e = vec![0.0; n];
    for j in 0..params.l() {
        let b_j = budgets[j];
        let caps: Vec<f64> = group_perfs[j]
            .iter()
            .map(|&p| p.min(b_j / q as f64))
            .collect();
        let member_e = proportional_capped(&group_perfs[j], &caps, b_j);
        for (i, block) in params.group_blocks(j).enumerate() {
            e[block] = member_e[i];
        }
    }
    for t in 0..params.g() {
        e[params.global_parity_position(t)] = budgets[params.l() + t];
    }
    e
}

/// Solves `Σ min(λ·perfs[i], caps[i]) = total` for λ by bisection and
/// returns the resulting allocation. Assumes `Σ caps >= total` (up to
/// floating slack); allocations are clamped to the caps.
fn proportional_capped(perfs: &[f64], caps: &[f64], total: f64) -> Vec<f64> {
    debug_assert_eq!(perfs.len(), caps.len());
    let cap_sum: f64 = caps.iter().sum();
    if cap_sum <= total * (1.0 + 1e-9) {
        // Everything is capped (or numerically indistinguishable).
        return caps.to_vec();
    }
    let eval = |lambda: f64| -> f64 {
        perfs
            .iter()
            .zip(caps)
            .map(|(&p, &c)| (lambda * p).min(c))
            .sum()
    };
    let (mut lo, mut hi) = (0.0f64, 1.0f64);
    while eval(hi) < total {
        hi *= 2.0;
        if hi > 1e12 {
            break;
        }
    }
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if eval(mid) < total {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    perfs
        .iter()
        .zip(caps)
        .map(|(&p, &c)| (hi * p).min(c))
        .collect()
}

/// The maximal fixed point `S` of `S = Σ min(p_i, S/k)` — the water-filling
/// level computation shared with [`water_filling`].
fn water_level(k: usize, perfs: &[f64]) -> f64 {
    let n = perfs.len();
    if k >= n {
        // Every member capped: S = n · min? The binding case is S/k >= all
        // p_i impossible for k >= n unless equal; use the conservative sum.
        return perfs.iter().sum();
    }
    let mut sorted: Vec<f64> = perfs.to_vec();
    sorted.sort_by(|a, b| b.partial_cmp(a).unwrap());
    let mut rest: f64 = sorted.iter().sum();
    for t in 0..k {
        let c = rest / (k - t) as f64;
        let upper_ok = t == 0 || sorted[t - 1] >= c - 1e-12;
        let lower_ok = sorted.get(t).is_none_or(|&p| p <= c + 1e-12);
        if upper_ok && lower_ok {
            return perfs.iter().map(|&p| p.min(c)).sum();
        }
        rest -= sorted[t];
    }
    perfs.iter().sum()
}

/// Closed-form weight assignment for the special case `l = 0`
/// (water-filling): maximizes `S = Σ(p_i − d_i)` subject to
/// `p_i − d_i ≤ S/k` by iteratively capping the fastest servers.
///
/// Returns weights in the same form as [`solve_weights`]. Used as an
/// independent cross-check of the LP in tests, and as a fast path.
///
/// # Panics
///
/// Panics if `k == 0`, `performances` is empty, or any performance is
/// non-positive.
pub fn water_filling(k: usize, performances: &[f64]) -> Vec<f64> {
    let n = performances.len();
    assert!(k > 0 && k <= n, "need 0 < k <= number of blocks");
    assert!(
        performances.iter().all(|&p| p > 0.0),
        "performances must be positive"
    );
    if k == n {
        // Every block must hold exactly one block's worth: w_i = 1.
        return vec![1.0; n];
    }
    // Solve S = Σ min(p_i, S/k) exactly. Suppose the t fastest servers are
    // capped at c = S/k; then S = t·c + R_t with R_t the sum of the rest,
    // so c = R_t / (k − t). The correct t is the one consistent with the
    // sorted order: p falls on either side of c.
    let mut sorted: Vec<f64> = performances.to_vec();
    sorted.sort_by(|a, b| b.partial_cmp(a).unwrap());
    let total: f64 = sorted.iter().sum();
    let mut cap = f64::INFINITY;
    let mut rest = total;
    for t in 0..k.min(n) {
        let c = rest / (k - t) as f64;
        let upper_ok = t == 0 || sorted[t - 1] >= c - 1e-12;
        let lower_ok = t == n || sorted.get(t).is_none_or(|&p| p <= c + 1e-12);
        if upper_ok && lower_ok {
            cap = c;
            break;
        }
        rest -= sorted[t];
    }
    assert!(
        cap.is_finite(),
        "water filling must find a consistent level"
    );
    let s: f64 = performances.iter().map(|&p| p.min(cap)).sum();
    performances
        .iter()
        .map(|&p| (k as f64 * p.min(cap) / s).clamp(0.0, 1.0))
        .collect()
}

/// An integral stripe allocation: the realized weights after rounding
/// onto a grid of `resolution` stripes per block.
///
/// Invariants (all verified at construction):
///
/// * `counts[i] ≤ resolution` and `Σ counts = k · resolution`;
/// * with `l > 0`, each group's total is `(k/l) · a_j` for an integral
///   step-1 count `a_j ≤ resolution` ([`StripeAllocation::group_data_count`]),
///   and every member satisfies `counts[i] ≤ a_j`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StripeAllocation {
    params: GalloperParams,
    resolution: usize,
    counts: Vec<usize>,
    /// Step-1 data-stripe count a_j per group (empty when l = 0).
    group_data_counts: Vec<usize>,
}

impl StripeAllocation {
    /// Rounds real-valued target weights onto a grid of `resolution`
    /// stripes per block.
    ///
    /// `weights` is in grouped block order and is normalized internally to
    /// sum to `k`, so the output of [`solve_weights`] (or any positive
    /// vector) is accepted.
    ///
    /// # Errors
    ///
    /// [`WeightError`] if shapes are wrong, the resolution is zero, or the
    /// weights cannot be represented on the grid.
    pub fn from_weights(
        params: GalloperParams,
        weights: &[f64],
        resolution: usize,
    ) -> Result<Self, WeightError> {
        let n = params.num_blocks();
        if weights.len() != n {
            return Err(WeightError::WrongLength {
                got: weights.len(),
                expected: n,
            });
        }
        if resolution == 0 {
            return Err(WeightError::ZeroResolution);
        }
        if !weights.iter().all(|&w| w.is_finite() && w >= 0.0) {
            return Err(WeightError::InvalidPerformance);
        }
        let wsum: f64 = weights.iter().sum();
        if wsum <= 0.0 {
            return Err(WeightError::InvalidPerformance);
        }
        let k = params.k();
        let big_n = resolution;
        let total = k * big_n;
        let scale = k as f64 / wsum;
        let targets: Vec<f64> = weights.iter().map(|&w| w * scale * big_n as f64).collect();

        let (counts, group_data_counts) = if params.l() == 0 {
            let caps = vec![big_n; n];
            let counts = round_with_caps(&targets, &caps, total).ok_or(WeightError::Unroundable)?;
            (counts, Vec::new())
        } else {
            rationalize_grouped(params, &targets, big_n)?
        };

        let alloc = StripeAllocation {
            params,
            resolution,
            counts,
            group_data_counts,
        };
        alloc.verify().map_err(|_| WeightError::Unroundable)?;
        Ok(alloc)
    }

    /// The allocation for homogeneous servers at the smallest resolution
    /// that represents the uniform weight `k / (k+l+g)` exactly.
    ///
    /// For the paper's `(4, 2, 1)` example this yields `N = 7` with 4 data
    /// stripes in every block (Fig. 5).
    pub fn uniform(params: GalloperParams) -> Self {
        let n = params.num_blocks();
        let k = params.k();
        // Find the smallest N with k·N divisible by n and, for l > 0, the
        // per-group total divisible by the group size.
        for big_n in 1..=(n * n) {
            if !(k * big_n).is_multiple_of(n) {
                continue;
            }
            let m = k * big_n / n;
            if m > big_n {
                continue; // cannot happen (k < n), defensive
            }
            if params.l() > 0 {
                let span = params.group_span();
                let group_total = span * m;
                let q = params.group_size();
                if !group_total.is_multiple_of(q) || group_total / q > big_n {
                    continue;
                }
            }
            let weights = vec![1.0; n];
            if let Ok(a) = StripeAllocation::from_weights(params, &weights, big_n) {
                return a;
            }
        }
        unreachable!("a uniform allocation always exists for valid params")
    }

    /// Builds an allocation from *exact* rational weights `num/den`,
    /// choosing the resolution as the paper does in §IV-C: "one way to
    /// choose N is the lowest common multiple of fractions of all
    /// weights" — scaled up by the smallest factor that satisfies the
    /// group-divisibility constraints when `l > 0`.
    ///
    /// Weights are normalized exactly (in integer arithmetic) to sum to
    /// `k`. Each normalized weight must be ≤ 1.
    ///
    /// # Errors
    ///
    /// [`WeightError::InvalidPerformance`] for zero denominators or an
    /// all-zero weight vector; [`WeightError::Unroundable`] when a
    /// normalized weight exceeds 1 or the structural constraints cannot
    /// be met at any scale.
    pub fn from_fractions(
        params: GalloperParams,
        fractions: &[(u64, u64)],
    ) -> Result<Self, WeightError> {
        let n = params.num_blocks();
        if fractions.len() != n {
            return Err(WeightError::WrongLength {
                got: fractions.len(),
                expected: n,
            });
        }
        if fractions.iter().any(|&(_, d)| d == 0) {
            return Err(WeightError::InvalidPerformance);
        }
        let k = params.k() as u128;

        // Put everything over a common denominator D.
        let d_common = fractions
            .iter()
            .fold(1u128, |acc, &(_, d)| lcm(acc, d as u128));
        let numerators: Vec<u128> = fractions
            .iter()
            .map(|&(num, d)| num as u128 * (d_common / d as u128))
            .collect();
        let total: u128 = numerators.iter().sum();
        if total == 0 {
            return Err(WeightError::InvalidPerformance);
        }
        // Normalized weight i = k·numerators[i] / total. Reduce each and
        // take the lcm of the reduced denominators as the base N.
        let mut base_n = 1u128;
        for &num in &numerators {
            let g = gcd(k * num, total);
            let den = total / g;
            if k * num > total {
                return Err(WeightError::Unroundable); // weight > 1
            }
            base_n = lcm(base_n, den);
            if base_n > 1 << 20 {
                return Err(WeightError::Unroundable);
            }
        }

        // Scale by the smallest factor meeting the structural invariants.
        let max_scale = (params.group_size_or_one() * params.l().max(1)) as u128;
        for t in 1..=max_scale {
            let big_n = base_n * t;
            if big_n > 1 << 20 {
                break;
            }
            let counts: Vec<usize> = numerators
                .iter()
                .map(|&num| ((k * num * big_n) / total) as usize)
                .collect();
            // Exactness: every count must divide out perfectly.
            if numerators
                .iter()
                .any(|&num| !(k * num * big_n).is_multiple_of(total))
            {
                continue;
            }
            let q = if params.l() > 0 {
                params.group_size()
            } else {
                1
            };
            let group_data_counts: Vec<usize> = (0..params.l())
                .map(|j| params.group_blocks(j).map(|i| counts[i]).sum::<usize>() / q)
                .collect();
            let alloc = StripeAllocation {
                params,
                resolution: big_n as usize,
                counts,
                group_data_counts,
            };
            if alloc.verify().is_ok() {
                return Ok(alloc);
            }
        }
        Err(WeightError::Unroundable)
    }

    /// End-to-end helper: measure → LP → rationalize.
    ///
    /// # Errors
    ///
    /// Propagates [`WeightError`] from either stage.
    pub fn from_performances(
        params: GalloperParams,
        performances: &[f64],
        resolution: usize,
    ) -> Result<Self, WeightError> {
        let weights = solve_weights(params, performances)?;
        StripeAllocation::from_weights(params, &weights, resolution)
    }

    /// The code parameters this allocation is for.
    pub fn params(&self) -> GalloperParams {
        self.params
    }

    /// Stripes per block (the paper's N).
    pub fn resolution(&self) -> usize {
        self.resolution
    }

    /// Data-stripe count per block, grouped order.
    pub fn counts(&self) -> &[usize] {
        &self.counts
    }

    /// The step-1 data-stripe count `a_j = w_ig · N` of group `j`.
    ///
    /// # Panics
    ///
    /// Panics if `l == 0` or `j` is out of range.
    pub fn group_data_count(&self, j: usize) -> usize {
        assert!(self.params.l() > 0, "no groups when l = 0");
        self.group_data_counts[j]
    }

    /// The realized weight `counts[i] / N` of each block.
    pub fn realized_weights(&self) -> Vec<f64> {
        self.counts
            .iter()
            .map(|&m| m as f64 / self.resolution as f64)
            .collect()
    }

    /// Checks every invariant; returns a description of the first
    /// violation.
    pub fn verify(&self) -> Result<(), String> {
        let p = self.params;
        let n = p.num_blocks();
        let big_n = self.resolution;
        if self.counts.len() != n {
            return Err(format!("counts has length {} != {n}", self.counts.len()));
        }
        if let Some((i, &m)) = self.counts.iter().enumerate().find(|&(_, &m)| m > big_n) {
            return Err(format!("block {i} holds {m} > N = {big_n} data stripes"));
        }
        let total: usize = self.counts.iter().sum();
        if total != p.k() * big_n {
            return Err(format!("total {total} != k·N = {}", p.k() * big_n));
        }
        if p.l() > 0 {
            if self.group_data_counts.len() != p.l() {
                return Err("group_data_counts length mismatch".into());
            }
            let q = p.group_size();
            for j in 0..p.l() {
                let a = self.group_data_counts[j];
                if a > big_n {
                    return Err(format!("group {j} step-1 count {a} > N"));
                }
                let group_total: usize = p.group_blocks(j).map(|i| self.counts[i]).sum();
                if group_total != q * a {
                    return Err(format!(
                        "group {j} total {group_total} != (k/l)·a = {}",
                        q * a
                    ));
                }
                for i in p.group_blocks(j) {
                    if self.counts[i] > a {
                        return Err(format!(
                            "block {i} holds {} > group step-1 count {a}",
                            self.counts[i]
                        ));
                    }
                }
            }
        } else if !self.group_data_counts.is_empty() {
            return Err("group_data_counts must be empty when l = 0".into());
        }
        Ok(())
    }
}

fn gcd(a: u128, b: u128) -> u128 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

fn lcm(a: u128, b: u128) -> u128 {
    a / gcd(a, b) * b
}

/// Largest-remainder rounding of `targets` to non-negative integers
/// summing to `total`, honoring per-item caps. Returns `None` when the
/// caps make the total unreachable.
fn round_with_caps(targets: &[f64], caps: &[usize], total: usize) -> Option<Vec<usize>> {
    debug_assert_eq!(targets.len(), caps.len());
    let cap_sum: usize = caps.iter().sum();
    if cap_sum < total {
        return None;
    }
    let mut counts: Vec<usize> = targets
        .iter()
        .zip(caps)
        .map(|(&t, &c)| (t.max(0.0) as usize).min(c))
        .collect();
    // Fix up to the exact total, preferring items with the largest
    // remaining fractional demand (or smallest excess when shrinking).
    loop {
        let sum: usize = counts.iter().sum();
        match sum.cmp(&total) {
            std::cmp::Ordering::Equal => return Some(counts),
            std::cmp::Ordering::Less => {
                let candidate =
                    (0..counts.len())
                        .filter(|&i| counts[i] < caps[i])
                        .max_by(|&a, &b| {
                            let da = targets[a] - counts[a] as f64;
                            let db = targets[b] - counts[b] as f64;
                            da.partial_cmp(&db).unwrap()
                        })?;
                counts[candidate] += 1;
            }
            std::cmp::Ordering::Greater => {
                let candidate = (0..counts.len())
                    .filter(|&i| counts[i] > 0)
                    .min_by(|&a, &b| {
                        let da = targets[a] - counts[a] as f64;
                        let db = targets[b] - counts[b] as f64;
                        da.partial_cmp(&db).unwrap()
                    })?;
                counts[candidate] -= 1;
            }
        }
    }
}

/// Two-level rationalization for `l > 0`: first fix each group's step-1
/// count `a_j` and the global counts, then distribute within groups.
fn rationalize_grouped(
    params: GalloperParams,
    targets: &[f64],
    big_n: usize,
) -> Result<(Vec<usize>, Vec<usize>), WeightError> {
    let (l, g, q) = (params.l(), params.g(), params.group_size());
    let total = params.k() * big_n;

    // Level 1: group totals are q·a_j; globals are t_i. Work in units.
    let group_targets: Vec<f64> = (0..l)
        .map(|j| params.group_blocks(j).map(|i| targets[i]).sum::<f64>() / q as f64)
        .collect();
    let global_targets: Vec<f64> = (0..g)
        .map(|t| targets[params.global_parity_position(t)])
        .collect();

    let mut a: Vec<usize> = group_targets
        .iter()
        .map(|&t| (t.round().max(0.0) as usize).min(big_n))
        .collect();
    let mut t: Vec<usize> = global_targets
        .iter()
        .map(|&v| (v.round().max(0.0) as usize).min(big_n))
        .collect();

    let current = |a: &[usize], t: &[usize]| -> usize {
        q * a.iter().sum::<usize>() + t.iter().sum::<usize>()
    };

    let mut guard = 0usize;
    while current(&a, &t) != total {
        guard += 1;
        if guard > 100 * (l + g + 1) * (big_n + 1) {
            return Err(WeightError::Unroundable);
        }
        let sum = current(&a, &t);
        if sum < total {
            let deficit = total - sum;
            // Prefer the unit that fits; among candidates pick the largest
            // per-unit shortfall.
            let group_cand = (deficit >= q)
                .then(|| {
                    (0..l).filter(|&j| a[j] < big_n).max_by(|&x, &y| {
                        let dx = group_targets[x] - a[x] as f64;
                        let dy = group_targets[y] - a[y] as f64;
                        dx.partial_cmp(&dy).unwrap()
                    })
                })
                .flatten();
            let global_cand = (0..g).filter(|&i| t[i] < big_n).max_by(|&x, &y| {
                let dx = global_targets[x] - t[x] as f64;
                let dy = global_targets[y] - t[y] as f64;
                dx.partial_cmp(&dy).unwrap()
            });
            match (group_cand, global_cand) {
                (Some(j), Some(i)) => {
                    let dj = group_targets[j] - a[j] as f64;
                    let di = global_targets[i] - t[i] as f64;
                    if dj >= di {
                        a[j] += 1;
                    } else {
                        t[i] += 1;
                    }
                }
                (Some(j), None) => a[j] += 1,
                (None, Some(i)) => t[i] += 1,
                (None, None) => {
                    // Nothing below cap can take units of the needed size:
                    // force a group up (may overshoot; loop shrinks later).
                    let j = (0..l)
                        .find(|&j| a[j] < big_n)
                        .ok_or(WeightError::Unroundable)?;
                    a[j] += 1;
                }
            }
        } else {
            // Shrink: remove from the item with the largest excess.
            let group_cand = (0..l).filter(|&j| a[j] > 0).min_by(|&x, &y| {
                let dx = group_targets[x] - a[x] as f64;
                let dy = group_targets[y] - a[y] as f64;
                dx.partial_cmp(&dy).unwrap()
            });
            let global_cand = (0..g).filter(|&i| t[i] > 0).min_by(|&x, &y| {
                let dx = global_targets[x] - t[x] as f64;
                let dy = global_targets[y] - t[y] as f64;
                dx.partial_cmp(&dy).unwrap()
            });
            // Prefer unit-1 moves when the excess is below q.
            let excess = sum - total;
            match (group_cand, global_cand) {
                (_, Some(i)) if excess < q => t[i] -= 1,
                (Some(j), _) if excess >= q => a[j] -= 1,
                (_, Some(i)) => t[i] -= 1,
                (Some(j), None) => a[j] -= 1,
                (None, None) => return Err(WeightError::Unroundable),
            }
        }
    }

    // Level 2: within each group, distribute q·a_j among the q+1 members
    // capped at a_j.
    let mut counts = vec![0usize; params.num_blocks()];
    for (j, &aj) in a.iter().enumerate().take(l) {
        let blocks: Vec<usize> = params.group_blocks(j).collect();
        let member_targets: Vec<f64> = blocks.iter().map(|&i| targets[i]).collect();
        let caps = vec![aj; blocks.len()];
        let member_counts =
            round_with_caps(&member_targets, &caps, q * aj).ok_or(WeightError::Unroundable)?;
        for (&b, &m) in blocks.iter().zip(&member_counts) {
            counts[b] = m;
        }
    }
    for (i, &ti) in t.iter().enumerate() {
        counts[params.global_parity_position(i)] = ti;
    }
    Ok((counts, a))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(k: usize, l: usize, g: usize) -> GalloperParams {
        GalloperParams::new(k, l, g).unwrap()
    }

    #[test]
    fn homogeneous_weights_need_no_throttling() {
        let p = params(4, 2, 1);
        let w = solve_weights(p, &[1.0; 7]).unwrap();
        for &wi in &w {
            assert!((wi - 4.0 / 7.0).abs() < 1e-9, "weight {wi}");
        }
    }

    #[test]
    fn l0_lp_matches_water_filling() {
        let perfs = [10.0, 1.0, 1.0, 1.0, 1.0];
        let p = params(4, 0, 1);
        let lp = solve_weights(p, &perfs).unwrap();
        let wf = water_filling(4, &perfs);
        for (a, b) in lp.iter().zip(&wf) {
            assert!((a - b).abs() < 1e-6, "{a} vs {b}");
        }
        // The fast server is capped at weight 1.
        assert!((lp[0] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn water_filling_no_cap_needed() {
        let w = water_filling(2, &[3.0, 3.0, 3.0]);
        for &wi in &w {
            assert!((wi - 2.0 / 3.0).abs() < 1e-12);
        }
    }

    #[test]
    fn water_filling_multiple_caps() {
        // Two very fast servers, three slow: both fast ones end capped.
        let w = water_filling(3, &[100.0, 100.0, 1.0, 1.0, 1.0]);
        assert!((w[0] - 1.0).abs() < 1e-9);
        assert!((w[1] - 1.0).abs() < 1e-9);
        let sum: f64 = w.iter().sum();
        assert!((sum - 3.0).abs() < 1e-9);
    }

    #[test]
    fn grouped_lp_respects_group_constraints() {
        // One group hosted on very fast servers: the group-level cap
        // l·Σ_group(p−d) ≤ Σ(p−d) must bind.
        let p = params(4, 2, 1);
        let perfs = [50.0, 50.0, 50.0, 1.0, 1.0, 1.0, 1.0];
        let w = solve_weights(p, &perfs).unwrap();
        let group0: f64 = (0..3).map(|i| w[i]).sum();
        // Step-1 weight of group 0 data blocks = group0·l/k ≤ 1.
        assert!(group0 * 2.0 / 4.0 <= 1.0 + 1e-6, "group0 sum {group0}");
        let sum: f64 = w.iter().sum();
        assert!((sum - 4.0).abs() < 1e-6);
    }

    #[test]
    fn uniform_allocation_matches_paper_figure_5() {
        let alloc = StripeAllocation::uniform(params(4, 2, 1));
        assert_eq!(alloc.resolution(), 7);
        assert_eq!(alloc.counts(), &[4, 4, 4, 4, 4, 4, 4]);
        assert_eq!(alloc.group_data_count(0), 6, "w_ig = 6/7 in Fig. 5");
        assert_eq!(alloc.group_data_count(1), 6);
        alloc.verify().unwrap();
    }

    #[test]
    fn uniform_l0_matches_paper_figure_3() {
        // (4, 0, 1): five blocks, N = 5 minimal for uniform 4/5.
        let alloc = StripeAllocation::uniform(params(4, 0, 1));
        assert_eq!(alloc.resolution(), 5);
        assert_eq!(alloc.counts(), &[4, 4, 4, 4, 4]);
    }

    #[test]
    fn figure_3_weights_rationalize_exactly() {
        // Fig. 3/4: weights (6/7 ×4, 4/7) at N = 7.
        let p = params(4, 0, 1);
        let w = [6.0 / 7.0, 6.0 / 7.0, 6.0 / 7.0, 6.0 / 7.0, 4.0 / 7.0];
        let alloc = StripeAllocation::from_weights(p, &w, 7).unwrap();
        assert_eq!(alloc.counts(), &[6, 6, 6, 6, 4]);
    }

    #[test]
    fn heterogeneous_grouped_allocation_is_valid() {
        let p = params(4, 2, 1);
        // Group 1's servers run at 40% speed (the Fig. 10 scenario).
        let perfs = [1.0, 1.0, 1.0, 0.4, 0.4, 0.4, 1.0];
        let alloc = StripeAllocation::from_performances(p, &perfs, 16).unwrap();
        alloc.verify().unwrap();
        // Faster group holds more data.
        let g0: usize = (0..3).map(|i| alloc.counts()[i]).sum();
        let g1: usize = (3..6).map(|i| alloc.counts()[i]).sum();
        assert!(g0 > g1, "{g0} vs {g1}");
    }

    #[test]
    fn allocation_invariants_hold_for_many_shapes() {
        for (k, l, g) in [
            (4, 2, 1),
            (6, 3, 2),
            (8, 2, 1),
            (12, 4, 2),
            (6, 0, 2),
            (9, 3, 1),
        ] {
            let p = params(k, l, g);
            let perfs: Vec<f64> = (0..p.num_blocks())
                .map(|i| 1.0 + (i % 5) as f64 * 0.7)
                .collect();
            for resolution in [8, 21, 64] {
                let alloc = StripeAllocation::from_performances(p, &perfs, resolution)
                    .unwrap_or_else(|e| panic!("({k},{l},{g}) N={resolution}: {e}"));
                alloc.verify().unwrap();
            }
        }
    }

    #[test]
    fn from_fractions_matches_figure_3() {
        // Fig. 3: weights (6/7, 6/7, 6/7, 6/7, 4/7) → N = 7 exactly.
        let p = params(4, 0, 1);
        let f = [(6u64, 7u64), (6, 7), (6, 7), (6, 7), (4, 7)];
        let alloc = StripeAllocation::from_fractions(p, &f).unwrap();
        assert_eq!(alloc.resolution(), 7);
        assert_eq!(alloc.counts(), &[6, 6, 6, 6, 4]);
    }

    #[test]
    fn from_fractions_matches_uniform() {
        // Uniform (4,2,1): 4/7 per block; lcm path must agree with the
        // uniform constructor's minimal N.
        let p = params(4, 2, 1);
        let f = vec![(4u64, 7u64); 7];
        let alloc = StripeAllocation::from_fractions(p, &f).unwrap();
        assert_eq!(
            alloc.resolution(),
            StripeAllocation::uniform(p).resolution()
        );
        assert_eq!(alloc.counts(), StripeAllocation::uniform(p).counts());
    }

    #[test]
    fn from_fractions_normalizes() {
        // Unnormalized inputs (2,2,2,2,2) sum to 10, scaled to k = 4:
        // each weight becomes 4/5 → N = 5, counts (4,4,4,4,4).
        let p = params(4, 0, 1);
        let f = vec![(2u64, 1u64); 5];
        let alloc = StripeAllocation::from_fractions(p, &f).unwrap();
        assert_eq!(alloc.resolution(), 5);
        assert_eq!(alloc.counts(), &[4, 4, 4, 4, 4]);
    }

    #[test]
    fn from_fractions_scales_for_group_divisibility() {
        // (4, 2, 1) with weights (1/2 ×6, 1): normalized sum = 4 exactly.
        // Base N = 2 is too coarse for group divisibility; the
        // constructor must scale up rather than fail.
        let p = params(4, 2, 1);
        let f = [(1u64, 2u64), (1, 2), (1, 2), (1, 2), (1, 2), (1, 2), (1, 1)];
        let alloc = StripeAllocation::from_fractions(p, &f).unwrap();
        alloc.verify().unwrap();
        let n = alloc.resolution() as f64;
        for (i, &(num, den)) in f.iter().enumerate() {
            let want = num as f64 / den as f64;
            assert!(
                (alloc.counts()[i] as f64 / n - want).abs() < 1e-12,
                "block {i}"
            );
        }
    }

    #[test]
    fn from_fractions_rejects_overweight() {
        let p = params(4, 0, 1);
        // One weight normalizes above 1 (5·(3/2)/... ): (3,1,1,1,1)·4/7:
        // 12/7 > 1.
        let f = [(3u64, 1u64), (1, 1), (1, 1), (1, 1), (1, 1)];
        assert!(matches!(
            StripeAllocation::from_fractions(p, &f),
            Err(WeightError::Unroundable)
        ));
    }

    #[test]
    fn rejects_bad_inputs() {
        let p = params(4, 2, 1);
        assert!(matches!(
            solve_weights(p, &[1.0; 3]),
            Err(WeightError::WrongLength { .. })
        ));
        assert!(matches!(
            solve_weights(p, &[1.0, 1.0, 1.0, 1.0, 1.0, 1.0, -2.0]),
            Err(WeightError::InvalidPerformance)
        ));
        assert!(matches!(
            StripeAllocation::from_weights(p, &[1.0; 7], 0),
            Err(WeightError::ZeroResolution)
        ));
    }

    #[test]
    fn round_with_caps_basics() {
        let counts = round_with_caps(&[1.5, 1.5, 1.0], &[2, 2, 2], 4).unwrap();
        assert_eq!(counts.iter().sum::<usize>(), 4);
        assert!(counts.iter().all(|&c| c <= 2));
        assert_eq!(
            round_with_caps(&[5.0], &[2], 4),
            None,
            "cap sum below total"
        );
    }
}
