//! All-symbol locality: the extension the paper flags as future work.
//!
//! A `(k, l, g)` Galloper (or Pyramid) code achieves *information*
//! locality: data and local-parity blocks repair from `k/l` blocks, but a
//! lost global parity still needs `k` reads (Fig. 8, block 7). The paper
//! suggests placing global parities on weak servers and defers all-symbol
//! locality to future work (§VII-A).
//!
//! [`GalloperAsl`] realizes that extension in the Azure-LRC spirit: one
//! extra local parity block is added over the `g` global parity blocks
//! (their XOR), forming a *global group* of `g + 1` members. Every block
//! of the code is now locally repairable:
//!
//! * data / local-parity blocks: `k/l` reads (unchanged);
//! * global parity blocks and the new parity: `g` reads (down from `k`).
//!
//! The cost is one extra block of storage (`(k+l+g+1)/k` overhead), and —
//! because the new block participates in symbol remapping like any other —
//! it also carries original data, so parallelism extends to it too.
//!
//! Failure tolerance is still any `g + 1` losses (the code is a superset
//! of the `(k, l, g)` Pyramid code), plus additional patterns.

use galloper_erasure::remap::{remap_basis, sequential_selection};
use galloper_erasure::{BlockRole, DataLayout, LinearCode, RepairPlan};
use galloper_gf::slice;
use galloper_linalg::Matrix;
use galloper_pyramid::Pyramid;

use crate::{GalloperError, GalloperParams, WeightError};

/// A `(k, l, g)` Galloper code with all-symbol locality: `k + l + g + 1`
/// blocks, every one locally repairable.
///
/// Block order: `[group 0 | group 1 | … | G₁ … G_g, P_G]` where `P_G` is
/// the XOR of the global parities.
///
/// # Examples
///
/// ```
/// use galloper::GalloperAsl;
/// use galloper_erasure::ErasureCode;
///
/// let code = GalloperAsl::uniform(4, 2, 2, 256)?;
/// // Global parities now repair from g = 2 blocks instead of k = 4.
/// assert_eq!(code.repair_plan(6)?.fan_in(), 2);
/// // And every block still holds original data.
/// let layout = code.layout();
/// for b in 0..code.num_blocks() {
///     assert!(layout.data_stripes(b) > 0);
/// }
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct GalloperAsl {
    inner: LinearCode,
    params: GalloperParams,
    resolution: usize,
}

impl GalloperAsl {
    /// Builds the all-symbol-locality code with uniform weights at the
    /// smallest exact resolution.
    ///
    /// # Errors
    ///
    /// [`GalloperError`] on invalid parameters or if the uniform weight
    /// `k/(k+l+g+1)` violates the global group's capacity (requires
    /// `g ≥ 1`; for `g = 1` the global group would need to hold more data
    /// per member than the remap allows at some shapes — construction
    /// fails cleanly in that case).
    pub fn uniform(
        k: usize,
        l: usize,
        g: usize,
        stripe_size: usize,
    ) -> Result<Self, GalloperError> {
        let params = GalloperParams::new(k, l, g)?;
        if params.l() == 0 {
            // With no local groups the "extension" is just Azure-LRC over
            // an MDS code; keep scope to the paper's l >= 1 setting.
            return Err(GalloperError::Params(crate::ParamsError::ZeroK));
        }
        let n = params.num_blocks() + 1;
        // Find the smallest N where uniform counts are integral and both
        // group capacities hold.
        for big_n in 1..=(n * n) {
            if !(k * big_n).is_multiple_of(n) {
                continue;
            }
            let m = k * big_n / n;
            let q = params.group_size();
            if (params.group_span() * m) > q * big_n {
                continue; // data-group capacity q·N
            }
            if (g + 1) * m > g * big_n {
                continue; // global-group capacity g·N
            }
            let counts = vec![m; n];
            return Self::with_counts(params, &counts, big_n, stripe_size);
        }
        Err(GalloperError::Weights(WeightError::Unroundable))
    }

    /// Builds the code from explicit per-block stripe counts (length
    /// `k + l + g + 1`, in block order).
    ///
    /// # Errors
    ///
    /// [`GalloperError`] if the counts violate a capacity (`Σ = k·N`,
    /// `mᵢ ≤ N`, data-group totals ≤ `(k/l)·N`, global-group total
    /// ≤ `g·N`) or the construction fails validation.
    pub fn with_counts(
        params: GalloperParams,
        counts: &[usize],
        resolution: usize,
        stripe_size: usize,
    ) -> Result<Self, GalloperError> {
        let (k, l, g) = (params.k(), params.l(), params.g());
        let n = params.num_blocks() + 1;
        let big_n = resolution;
        if counts.len() != n
            || counts.iter().sum::<usize>() != k * big_n
            || counts.iter().any(|&m| m > big_n)
        {
            return Err(GalloperError::Weights(WeightError::Unroundable));
        }
        let q = params.group_size();
        for j in 0..l {
            let total: usize = params.group_blocks(j).map(|b| counts[b]).sum();
            if total > q * big_n {
                return Err(GalloperError::Weights(WeightError::Unroundable));
            }
        }
        let global_total: usize = (k + l..n).map(|b| counts[b]).sum();
        if global_total > g * big_n {
            return Err(GalloperError::Weights(WeightError::Unroundable));
        }

        // Base generator: the Pyramid rows plus the XOR of the global rows.
        let pyramid = Pyramid::new(k, l, g, 1)?;
        let pyr_gen = pyramid.as_linear().generator();
        let mut asl_row = vec![0u8; k];
        for t in 0..g {
            slice::xor_slice(pyr_gen.row(k + l + t), &mut asl_row);
        }
        let base = pyr_gen.vstack(&Matrix::from_rows(&[asl_row]));

        let gg = base.kron_identity(big_n);
        let selections = sequential_selection(counts, big_n);
        let rc = remap_basis(&gg, &selections, big_n)?;

        let mut roles: Vec<BlockRole> = (0..params.num_blocks()).map(|b| params.role(b)).collect();
        roles.push(BlockRole::LocalParity); // the global group's parity
        let layout = DataLayout::new(rc.assignments, big_n);
        let plans = (0..n)
            .map(|b| {
                let sources = if b < k + l {
                    let j = params.group_of(b).expect("group member");
                    params.group_blocks(j).filter(|&x| x != b).collect()
                } else {
                    // Global-group member: the other g members.
                    (k + l..n).filter(|&x| x != b).collect()
                };
                RepairPlan::new(b, sources)
            })
            .collect();
        let inner = LinearCode::new(rc.generator, k, roles, layout, plans, stripe_size)?;
        Ok(GalloperAsl {
            inner,
            params,
            resolution,
        })
    }

    /// The underlying `(k, l, g)` parameters (the code has one extra
    /// block beyond `params().num_blocks()`).
    pub fn params(&self) -> GalloperParams {
        self.params
    }

    /// Stripes per block.
    pub fn resolution(&self) -> usize {
        self.resolution
    }

    /// The underlying generic linear code.
    pub fn as_linear(&self) -> &LinearCode {
        &self.inner
    }
}

galloper_erasure::delegate_erasure_code!(GalloperAsl, inner);

impl galloper_erasure::AsLinearCode for GalloperAsl {
    fn as_linear_code(&self) -> &LinearCode {
        &self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use galloper_erasure::ErasureCode;
    use galloper_pyramid::subsets;

    fn sample(len: usize) -> Vec<u8> {
        (0..len)
            .map(|i| (i.wrapping_mul(151) % 247) as u8)
            .collect()
    }

    #[test]
    fn every_block_is_locally_repairable() {
        let code = GalloperAsl::uniform(4, 2, 2, 8).unwrap();
        assert_eq!(code.num_blocks(), 9);
        let data = sample(code.message_len());
        let blocks = code.encode(&data).unwrap();
        for b in 0..9 {
            let plan = code.repair_plan(b).unwrap();
            // Here q = 2 and g = 2, so every block has fan-in 2.
            let expected = 2;
            assert_eq!(plan.fan_in(), expected, "block {b}");
            let sources: Vec<(usize, &[u8])> = plan
                .sources()
                .iter()
                .map(|&s| (s, blocks[s].as_slice()))
                .collect();
            assert_eq!(
                code.reconstruct(b, &sources).unwrap(),
                blocks[b],
                "block {b}"
            );
        }
    }

    #[test]
    fn global_repair_is_cheaper_than_information_locality() {
        // (6, 2, 2): plain Galloper repairs a global from k = 6 blocks;
        // the ASL variant from g = 2.
        let plain = crate::Galloper::uniform(6, 2, 2, 8).unwrap();
        let asl = GalloperAsl::uniform(6, 2, 2, 8).unwrap();
        assert_eq!(plain.repair_plan(8).unwrap().fan_in(), 6);
        assert_eq!(asl.repair_plan(8).unwrap().fan_in(), 2);
        // ...at the price of one extra block.
        assert_eq!(asl.num_blocks(), plain.num_blocks() + 1);
    }

    #[test]
    fn tolerates_any_g_plus_one_failures() {
        for (k, l, g) in [(4, 2, 2), (6, 2, 2), (6, 3, 2)] {
            let code = GalloperAsl::uniform(k, l, g, 1).unwrap();
            let n = code.num_blocks();
            for erased in subsets(n, g + 1) {
                let mut avail = vec![true; n];
                for &e in &erased {
                    avail[e] = false;
                }
                assert!(
                    code.can_decode(&avail),
                    "({k},{l},{g}) ASL must survive {erased:?}"
                );
            }
        }
    }

    #[test]
    fn data_lives_in_every_block() {
        let code = GalloperAsl::uniform(4, 2, 2, 16).unwrap();
        let layout = code.layout();
        let data = sample(code.message_len());
        let blocks = code.encode(&data).unwrap();
        let refs: Vec<&[u8]> = blocks.iter().map(Vec::as_slice).collect();
        assert_eq!(layout.extract_data(&refs), data);
        for b in 0..code.num_blocks() {
            assert!(layout.data_stripes(b) > 0, "block {b} must hold data");
        }
    }

    #[test]
    fn decode_under_double_failures() {
        let code = GalloperAsl::uniform(4, 2, 2, 8).unwrap();
        let data = sample(code.message_len());
        let blocks = code.encode(&data).unwrap();
        for erased in subsets(code.num_blocks(), 2) {
            let avail: Vec<Option<&[u8]>> = (0..code.num_blocks())
                .map(|b| (!erased.contains(&b)).then(|| blocks[b].as_slice()))
                .collect();
            assert_eq!(code.decode(&avail).unwrap(), data, "erased {erased:?}");
        }
    }

    #[test]
    fn rejects_overfull_global_group() {
        let params = GalloperParams::new(4, 2, 1).unwrap();
        // Global group (2 members) may hold at most g·N = 7 stripes; ask
        // for 12.
        let counts = [4, 4, 4, 4, 4, 4, 6, 6];
        let err = GalloperAsl::with_counts(params, &counts, 7, 1);
        assert!(err.is_err());
    }
}
