//! Galloper codes: parallelism-aware locally repairable codes.
//!
//! This crate is a from-scratch implementation of *Parallelism-Aware
//! Locally Repairable Code for Distributed Storage Systems* (Jun Li &
//! Baochun Li, ICDCS 2018). A `(k, l, g)` Galloper code keeps the two
//! properties storage systems care about from Pyramid codes:
//!
//! * **Low repair I/O** — a data or local-parity block is rebuilt from the
//!   `k/l` other blocks of its local group; only global parities need `k`
//!   reads.
//! * **Failure tolerance** — any `g + 1` block failures are recoverable.
//!
//! …and adds the property analytics systems care about:
//!
//! * **Full data parallelism** — via symbol remapping, original data is
//!   embedded in *every* block (not just the k data blocks), in amounts
//!   proportional to a per-server weight, so map tasks can run on all
//!   `k + l + g` servers and heterogeneous servers get proportional work.
//!
//! # Quick start
//!
//! ```
//! use galloper::Galloper;
//! use galloper_erasure::ErasureCode;
//!
//! // Homogeneous cluster, the paper's running example.
//! let code = Galloper::uniform(4, 2, 1, 256)?;
//! let data: Vec<u8> = (0..code.message_len()).map(|i| i as u8).collect();
//! let blocks = code.encode(&data)?;
//!
//! // Any two failures are tolerated (g + 1 = 2):
//! let mut available: Vec<Option<&[u8]>> = blocks.iter().map(|b| Some(b.as_slice())).collect();
//! available[0] = None;
//! available[6] = None;
//! assert_eq!(code.decode(&available)?, data);
//!
//! // The original data can be read straight out of the blocks, 4/7 of a
//! // block from each of the 7 servers:
//! let refs: Vec<&[u8]> = blocks.iter().map(|b| b.as_slice()).collect();
//! assert_eq!(code.layout().extract_data(&refs), data);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! # Heterogeneous servers
//!
//! [`Galloper::from_performances`] runs the paper's linear program
//! (§IV-C / §V-B) to throttle over-fast servers minimally, then rounds
//! the resulting weights onto the stripe grid:
//!
//! ```
//! use galloper::Galloper;
//! use galloper_erasure::ErasureCode;
//!
//! // Group 2's servers run at 40% speed (the paper's Fig. 10 setup).
//! let perfs = [1.0, 1.0, 1.0, 0.4, 0.4, 0.4, 1.0];
//! let code = Galloper::from_performances(4, 2, 1, &perfs, 20, 64)?;
//! let layout = code.layout();
//! // Faster servers hold more original data than throttled ones.
//! assert!(layout.data_fraction(0) > layout.data_fraction(3));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod asl;
mod code;
mod construct;
mod params;
mod weights;

pub use asl::GalloperAsl;
pub use code::{Galloper, GalloperError};
pub use params::{GalloperParams, ParamsError};
pub use weights::{solve_weights, water_filling, StripeAllocation, WeightError};
