//! Code parameters and block ordering conventions.

use core::fmt;

use galloper_erasure::BlockRole;

/// The `(k, l, g)` parameters of a Galloper code.
///
/// * `k` — number of data-role blocks (and the number of blocks' worth of
///   original data).
/// * `l` — number of local parity blocks; `l` must divide `k` when
///   non-zero. With `l == 0` the code degenerates to the special case of
///   paper §IV (equivalent repair structure to a `(k, g)` Reed–Solomon
///   code).
/// * `g` — number of global parity blocks; at least 1.
///
/// Blocks are ordered in *grouped* form, matching §V-B's weight LP:
/// each local group's `k/l` data blocks are followed by its local parity,
/// and the `g` global parities come last:
/// `[d d … L | d d … L | … | G … G]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GalloperParams {
    k: usize,
    l: usize,
    g: usize,
}

/// Errors for invalid `(k, l, g)` combinations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum ParamsError {
    /// `k` must be at least 1.
    ZeroK,
    /// `g` must be at least 1 (a code with no global parity cannot
    /// tolerate arbitrary single failures of local parity groups).
    ZeroG,
    /// When `l > 0`, `l` must divide `k`.
    LocalityMismatch {
        /// The supplied k.
        k: usize,
        /// The supplied l.
        l: usize,
    },
    /// The field bounds the total: `k + g + 1 <= 255`.
    TooManyBlocks,
}

impl fmt::Display for ParamsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParamsError::ZeroK => f.write_str("k must be at least 1"),
            ParamsError::ZeroG => f.write_str("g must be at least 1"),
            ParamsError::LocalityMismatch { k, l } => {
                write!(f, "l = {l} must divide k = {k}")
            }
            ParamsError::TooManyBlocks => f.write_str("k + g + 1 must not exceed 255"),
        }
    }
}

impl std::error::Error for ParamsError {}

impl GalloperParams {
    /// Validates and creates a parameter set.
    ///
    /// # Errors
    ///
    /// See [`ParamsError`] for each rejected combination.
    pub fn new(k: usize, l: usize, g: usize) -> Result<Self, ParamsError> {
        if k == 0 {
            return Err(ParamsError::ZeroK);
        }
        if g == 0 {
            return Err(ParamsError::ZeroG);
        }
        if l > 0 && !k.is_multiple_of(l) {
            return Err(ParamsError::LocalityMismatch { k, l });
        }
        if k + g + 1 > 255 {
            return Err(ParamsError::TooManyBlocks);
        }
        Ok(GalloperParams { k, l, g })
    }

    /// Number of data-role blocks.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of local parity blocks (groups).
    pub fn l(&self) -> usize {
        self.l
    }

    /// Number of global parity blocks.
    pub fn g(&self) -> usize {
        self.g
    }

    /// Total number of blocks `k + l + g`.
    pub fn num_blocks(&self) -> usize {
        self.k + self.l + self.g
    }

    /// Data blocks per local group (`k / l`).
    ///
    /// # Panics
    ///
    /// Panics if `l == 0`.
    pub fn group_size(&self) -> usize {
        assert!(self.l > 0, "no local groups when l = 0");
        self.k / self.l
    }

    /// Like [`GalloperParams::group_size`], but returns 1 when `l == 0`
    /// (useful for scale bounds in rational arithmetic).
    pub fn group_size_or_one(&self) -> usize {
        self.k.checked_div(self.l).unwrap_or(1)
    }

    /// Blocks per local group including the local parity (`k/l + 1`).
    ///
    /// # Panics
    ///
    /// Panics if `l == 0`.
    pub fn group_span(&self) -> usize {
        self.group_size() + 1
    }

    /// The role of the block at grouped-order position `block`.
    ///
    /// # Panics
    ///
    /// Panics if `block >= num_blocks()`.
    pub fn role(&self, block: usize) -> BlockRole {
        assert!(block < self.num_blocks(), "block index out of range");
        if self.l == 0 {
            return if block < self.k {
                BlockRole::Data
            } else {
                BlockRole::GlobalParity
            };
        }
        let span = self.group_span();
        if block < self.l * span {
            if block % span == span - 1 {
                BlockRole::LocalParity
            } else {
                BlockRole::Data
            }
        } else {
            BlockRole::GlobalParity
        }
    }

    /// Grouped-order position of the `c`-th data block (`c` is the data /
    /// column index `0..k`).
    pub fn data_block_position(&self, c: usize) -> usize {
        assert!(c < self.k, "data index out of range");
        if self.l == 0 {
            c
        } else {
            let q = self.group_size();
            (c / q) * self.group_span() + (c % q)
        }
    }

    /// Grouped-order position of local parity `j`.
    ///
    /// # Panics
    ///
    /// Panics if `l == 0` or `j >= l`.
    pub fn local_parity_position(&self, j: usize) -> usize {
        assert!(self.l > 0 && j < self.l, "local parity index out of range");
        j * self.group_span() + self.group_size()
    }

    /// Grouped-order position of global parity `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t >= g`.
    pub fn global_parity_position(&self, t: usize) -> usize {
        assert!(t < self.g, "global parity index out of range");
        self.k + self.l + t
    }

    /// The local group containing `block`, or `None` for global parities.
    ///
    /// # Panics
    ///
    /// Panics if `block >= num_blocks()`.
    pub fn group_of(&self, block: usize) -> Option<usize> {
        assert!(block < self.num_blocks(), "block index out of range");
        if self.l == 0 {
            return None;
        }
        let span = self.group_span();
        (block < self.l * span).then(|| block / span)
    }

    /// Grouped-order block indices of local group `j`, including its local
    /// parity.
    ///
    /// # Panics
    ///
    /// Panics if `l == 0` or `j >= l`.
    pub fn group_blocks(&self, j: usize) -> std::ops::Range<usize> {
        assert!(self.l > 0 && j < self.l, "group index out of range");
        let span = self.group_span();
        j * span..(j + 1) * span
    }
}

impl fmt::Display for GalloperParams {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {}, {})", self.k, self.l, self.g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_running_example() {
        let p = GalloperParams::new(4, 2, 1).unwrap();
        assert_eq!(p.num_blocks(), 7);
        assert_eq!(p.group_size(), 2);
        assert_eq!(p.group_span(), 3);
        // Order: [d0 d1 L0 | d2 d3 L1 | G0]
        assert_eq!(p.role(0), BlockRole::Data);
        assert_eq!(p.role(2), BlockRole::LocalParity);
        assert_eq!(p.role(3), BlockRole::Data);
        assert_eq!(p.role(5), BlockRole::LocalParity);
        assert_eq!(p.role(6), BlockRole::GlobalParity);
        assert_eq!(p.data_block_position(0), 0);
        assert_eq!(p.data_block_position(1), 1);
        assert_eq!(p.data_block_position(2), 3);
        assert_eq!(p.data_block_position(3), 4);
        assert_eq!(p.local_parity_position(0), 2);
        assert_eq!(p.local_parity_position(1), 5);
        assert_eq!(p.global_parity_position(0), 6);
        assert_eq!(p.group_of(4), Some(1));
        assert_eq!(p.group_of(6), None);
        assert_eq!(p.group_blocks(1), 3..6);
    }

    #[test]
    fn special_case_l_zero() {
        let p = GalloperParams::new(4, 0, 2).unwrap();
        assert_eq!(p.num_blocks(), 6);
        assert_eq!(p.role(3), BlockRole::Data);
        assert_eq!(p.role(4), BlockRole::GlobalParity);
        assert_eq!(p.data_block_position(3), 3);
        assert_eq!(p.group_of(0), None);
    }

    #[test]
    fn rejects_bad_params() {
        assert_eq!(GalloperParams::new(0, 0, 1), Err(ParamsError::ZeroK));
        assert_eq!(GalloperParams::new(4, 2, 0), Err(ParamsError::ZeroG));
        assert_eq!(
            GalloperParams::new(4, 3, 1),
            Err(ParamsError::LocalityMismatch { k: 4, l: 3 })
        );
        assert_eq!(
            GalloperParams::new(250, 0, 6),
            Err(ParamsError::TooManyBlocks)
        );
    }

    #[test]
    fn display_formats() {
        let p = GalloperParams::new(6, 2, 1).unwrap();
        assert_eq!(p.to_string(), "(6, 2, 1)");
    }
}
