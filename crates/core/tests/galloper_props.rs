//! Property-based tests: Galloper codes built from random parameters and
//! random server performances keep every paper-claimed invariant.

use galloper::{Galloper, GalloperParams, StripeAllocation};
use galloper_erasure::ErasureCode;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Random valid (k, l, g) with k + l + g small enough for fast tests.
fn params() -> impl Strategy<Value = GalloperParams> {
    (1usize..=4, 0usize..=3, 1usize..=2).prop_filter_map("l divides k", |(q, l, g)| {
        // Build k from group size so l | k holds by construction.
        let k = if l == 0 { q + 1 } else { q * l };
        GalloperParams::new(k, l, g).ok()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_performances_build_valid_codes(
        p in params(),
        seed in any::<u64>(),
        resolution in 4usize..24,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let perfs: Vec<f64> = (0..p.num_blocks()).map(|_| rng.gen_range(0.2..5.0f64)).collect();
        let alloc = StripeAllocation::from_performances(p, &perfs, resolution).unwrap();
        alloc.verify().unwrap();
        let code = Galloper::with_allocation(alloc, 4).unwrap();

        let data: Vec<u8> = (0..code.message_len()).map(|_| rng.gen()).collect();
        let blocks = code.encode(&data).unwrap();

        // Extraction without decoding reproduces the message.
        let refs: Vec<&[u8]> = blocks.iter().map(Vec::as_slice).collect();
        prop_assert_eq!(code.layout().extract_data(&refs), data.clone());

        // Random erasures up to the tolerance decode. With l = 0 the code
        // is (k, g)-RS-equivalent and tolerates g failures; with local
        // parities it tolerates g + 1 (the split XOR row adds one).
        let tolerance = if p.l() == 0 { p.g() } else { p.g() + 1 };
        let mut order: Vec<usize> = (0..p.num_blocks()).collect();
        order.shuffle(&mut rng);
        let erased: Vec<usize> = order.into_iter().take(tolerance).collect();
        let avail: Vec<Option<&[u8]>> = (0..p.num_blocks())
            .map(|b| (!erased.contains(&b)).then(|| blocks[b].as_slice()))
            .collect();
        prop_assert_eq!(code.decode(&avail).unwrap(), data);
    }

    #[test]
    fn reconstruction_is_exact_for_random_targets(
        p in params(),
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let code = Galloper::uniform(p.k(), p.l(), p.g(), 8).unwrap();
        let data: Vec<u8> = (0..code.message_len()).map(|_| rng.gen()).collect();
        let blocks = code.encode(&data).unwrap();
        let target = rng.gen_range(0..p.num_blocks());
        let plan = code.repair_plan(target).unwrap();
        let sources: Vec<(usize, &[u8])> = plan
            .sources()
            .iter()
            .map(|&s| (s, blocks[s].as_slice()))
            .collect();
        prop_assert_eq!(code.reconstruct(target, &sources).unwrap(), blocks[target].clone());
    }

    #[test]
    fn realized_weights_sum_to_k(
        p in params(),
        seed in any::<u64>(),
        resolution in 4usize..32,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let perfs: Vec<f64> = (0..p.num_blocks()).map(|_| rng.gen_range(0.2..5.0f64)).collect();
        let alloc = StripeAllocation::from_performances(p, &perfs, resolution).unwrap();
        let total: usize = alloc.counts().iter().sum();
        prop_assert_eq!(total, p.k() * alloc.resolution());
        for (i, &c) in alloc.counts().iter().enumerate() {
            prop_assert!(c <= alloc.resolution(), "block {} overfull", i);
        }
    }

    #[test]
    fn locality_never_exceeds_pyramid(
        p in params(),
    ) {
        let code = Galloper::uniform(p.k(), p.l(), p.g(), 1).unwrap();
        for b in 0..p.num_blocks() {
            let plan = code.repair_plan(b).unwrap();
            let expected = if p.l() == 0 {
                p.k()
            } else if p.group_of(b).is_some() {
                p.group_size()
            } else {
                p.k()
            };
            prop_assert_eq!(plan.fan_in(), expected, "block {}", b);
        }
    }

    #[test]
    fn weights_are_monotone_in_performance(
        p in params(),
        seed in any::<u64>(),
    ) {
        // Within one group (same structural constraints), a faster server
        // never receives less data than a slower one.
        let mut rng = StdRng::seed_from_u64(seed);
        let perfs: Vec<f64> = (0..p.num_blocks()).map(|_| rng.gen_range(0.5..3.0f64)).collect();
        let weights = galloper::solve_weights(p, &perfs).unwrap();
        if p.l() > 0 {
            for j in 0..p.l() {
                let blocks: Vec<usize> = p.group_blocks(j).collect();
                for &a in &blocks {
                    for &b in &blocks {
                        if perfs[a] > perfs[b] + 1e-9 {
                            prop_assert!(
                                weights[a] >= weights[b] - 1e-6,
                                "block {} (p={}) got weight {} < block {} (p={}) weight {}",
                                a, perfs[a], weights[a], b, perfs[b], weights[b]
                            );
                        }
                    }
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// For l = 0 the paper's LP and the closed-form water-filling are the
    /// same optimization; they must agree on random inputs.
    #[test]
    fn lp_matches_water_filling_for_l0(
        k in 1usize..8,
        extra in 1usize..4,
        seed in any::<u64>(),
    ) {
        let params = GalloperParams::new(k, 0, extra).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let perfs: Vec<f64> = (0..params.num_blocks())
            .map(|_| rng.gen_range(0.1..20.0f64))
            .collect();
        let lp = galloper::solve_weights(params, &perfs).unwrap();
        let wf = galloper::water_filling(k, &perfs);
        for (i, (a, b)) in lp.iter().zip(&wf).enumerate() {
            prop_assert!((a - b).abs() < 1e-5, "block {}: lp {} vs wf {}", i, a, b);
        }
    }

    /// Rationalized counts approximate the target weights within 1/N per
    /// block plus the group-divisibility slack.
    #[test]
    fn rationalization_error_is_bounded(
        q in 1usize..4,
        l in 1usize..4,
        g in 1usize..3,
        resolution in 8usize..64,
        seed in any::<u64>(),
    ) {
        let params = GalloperParams::new(q * l, l, g).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let perfs: Vec<f64> = (0..params.num_blocks())
            .map(|_| rng.gen_range(0.5..4.0f64))
            .collect();
        let weights = galloper::solve_weights(params, &perfs).unwrap();
        let alloc = StripeAllocation::from_weights(params, &weights, resolution).unwrap();
        let realized = alloc.realized_weights();
        // Group-level rounding can move up to ~(k/l)/N per member beyond
        // the 1/N largest-remainder slack; bound generously and verify the
        // structural invariants exactly.
        let slack = (q as f64 + 2.0) / resolution as f64;
        for (i, (w, r)) in weights.iter().zip(&realized).enumerate() {
            prop_assert!((w - r).abs() <= slack,
                "block {}: target {} realized {} (slack {})", i, w, r, slack);
        }
        alloc.verify().unwrap();
    }
}
