//! Randomized tests: Galloper codes built from random parameters and
//! random server performances keep every paper-claimed invariant.

use galloper::{Galloper, GalloperParams, StripeAllocation};
use galloper_erasure::ErasureCode;
use galloper_testkit::{run_cases, TestRng};

/// Random valid (k, l, g) with k + l + g small enough for fast tests.
fn params(rng: &mut TestRng) -> GalloperParams {
    loop {
        let q = rng.usize_in(1, 5);
        let l = rng.usize_in(0, 4);
        let g = rng.usize_in(1, 3);
        // Build k from group size so l | k holds by construction.
        let k = if l == 0 { q + 1 } else { q * l };
        if let Ok(p) = GalloperParams::new(k, l, g) {
            return p;
        }
    }
}

#[test]
fn random_performances_build_valid_codes() {
    run_cases(48, 0x41, |rng| {
        let p = params(rng);
        let resolution = rng.usize_in(4, 24);
        let perfs: Vec<f64> = (0..p.num_blocks()).map(|_| rng.f64_in(0.2, 5.0)).collect();
        let alloc = StripeAllocation::from_performances(p, &perfs, resolution).unwrap();
        alloc.verify().unwrap();
        let code = Galloper::with_allocation(alloc, 4).unwrap();

        let data = rng.bytes(code.message_len());
        let blocks = code.encode(&data).unwrap();

        // Extraction without decoding reproduces the message.
        let refs: Vec<&[u8]> = blocks.iter().map(Vec::as_slice).collect();
        assert_eq!(code.layout().extract_data(&refs), data);

        // Random erasures up to the tolerance decode. With l = 0 the code
        // is (k, g)-RS-equivalent and tolerates g failures; with local
        // parities it tolerates g + 1 (the split XOR row adds one).
        let tolerance = if p.l() == 0 { p.g() } else { p.g() + 1 };
        let erased = rng.sample_indices(p.num_blocks(), tolerance);
        let avail: Vec<Option<&[u8]>> = (0..p.num_blocks())
            .map(|b| (!erased.contains(&b)).then(|| blocks[b].as_slice()))
            .collect();
        assert_eq!(code.decode(&avail).unwrap(), data);
    });
}

#[test]
fn reconstruction_is_exact_for_random_targets() {
    run_cases(48, 0x42, |rng| {
        let p = params(rng);
        let code = Galloper::uniform(p.k(), p.l(), p.g(), 8).unwrap();
        let data = rng.bytes(code.message_len());
        let blocks = code.encode(&data).unwrap();
        let target = rng.usize_in(0, p.num_blocks());
        let plan = code.repair_plan(target).unwrap();
        let sources: Vec<(usize, &[u8])> = plan
            .sources()
            .iter()
            .map(|&s| (s, blocks[s].as_slice()))
            .collect();
        assert_eq!(code.reconstruct(target, &sources).unwrap(), blocks[target]);
    });
}

#[test]
fn realized_weights_sum_to_k() {
    run_cases(48, 0x43, |rng| {
        let p = params(rng);
        let resolution = rng.usize_in(4, 32);
        let perfs: Vec<f64> = (0..p.num_blocks()).map(|_| rng.f64_in(0.2, 5.0)).collect();
        let alloc = StripeAllocation::from_performances(p, &perfs, resolution).unwrap();
        let total: usize = alloc.counts().iter().sum();
        assert_eq!(total, p.k() * alloc.resolution());
        for (i, &c) in alloc.counts().iter().enumerate() {
            assert!(c <= alloc.resolution(), "block {i} overfull");
        }
    });
}

#[test]
fn locality_never_exceeds_pyramid() {
    run_cases(48, 0x44, |rng| {
        let p = params(rng);
        let code = Galloper::uniform(p.k(), p.l(), p.g(), 1).unwrap();
        for b in 0..p.num_blocks() {
            let plan = code.repair_plan(b).unwrap();
            let expected = if p.l() == 0 {
                p.k()
            } else if p.group_of(b).is_some() {
                p.group_size()
            } else {
                p.k()
            };
            assert_eq!(plan.fan_in(), expected, "block {b}");
        }
    });
}

#[test]
fn weights_are_monotone_in_performance() {
    run_cases(48, 0x45, |rng| {
        // Within one group (same structural constraints), a faster server
        // never receives less data than a slower one.
        let p = params(rng);
        let perfs: Vec<f64> = (0..p.num_blocks()).map(|_| rng.f64_in(0.5, 3.0)).collect();
        let weights = galloper::solve_weights(p, &perfs).unwrap();
        if p.l() > 0 {
            for j in 0..p.l() {
                let blocks: Vec<usize> = p.group_blocks(j).collect();
                for &a in &blocks {
                    for &b in &blocks {
                        if perfs[a] > perfs[b] + 1e-9 {
                            assert!(
                                weights[a] >= weights[b] - 1e-6,
                                "block {} (p={}) got weight {} < block {} (p={}) weight {}",
                                a,
                                perfs[a],
                                weights[a],
                                b,
                                perfs[b],
                                weights[b]
                            );
                        }
                    }
                }
            }
        }
    });
}

/// For l = 0 the paper's LP and the closed-form water-filling are the
/// same optimization; they must agree on random inputs.
#[test]
fn lp_matches_water_filling_for_l0() {
    run_cases(64, 0x46, |rng| {
        let k = rng.usize_in(1, 8);
        let extra = rng.usize_in(1, 4);
        let params = GalloperParams::new(k, 0, extra).unwrap();
        let perfs: Vec<f64> = (0..params.num_blocks())
            .map(|_| rng.f64_in(0.1, 20.0))
            .collect();
        let lp = galloper::solve_weights(params, &perfs).unwrap();
        let wf = galloper::water_filling(k, &perfs);
        for (i, (a, b)) in lp.iter().zip(&wf).enumerate() {
            assert!((a - b).abs() < 1e-5, "block {i}: lp {a} vs wf {b}");
        }
    });
}

/// Rationalized counts approximate the target weights within 1/N per
/// block plus the group-divisibility slack.
#[test]
fn rationalization_error_is_bounded() {
    run_cases(64, 0x47, |rng| {
        let q = rng.usize_in(1, 4);
        let l = rng.usize_in(1, 4);
        let g = rng.usize_in(1, 3);
        let resolution = rng.usize_in(8, 64);
        let params = GalloperParams::new(q * l, l, g).unwrap();
        let perfs: Vec<f64> = (0..params.num_blocks())
            .map(|_| rng.f64_in(0.5, 4.0))
            .collect();
        let weights = galloper::solve_weights(params, &perfs).unwrap();
        let alloc = StripeAllocation::from_weights(params, &weights, resolution).unwrap();
        let realized = alloc.realized_weights();
        // Group-level rounding can move up to ~(k/l)/N per member beyond
        // the 1/N largest-remainder slack; bound generously and verify the
        // structural invariants exactly.
        let slack = (q as f64 + 2.0) / resolution as f64;
        for (i, (w, r)) in weights.iter().zip(&realized).enumerate() {
            assert!(
                (w - r).abs() <= slack,
                "block {i}: target {w} realized {r} (slack {slack})"
            );
        }
        alloc.verify().unwrap();
    });
}
