//! End-to-end verification of the Galloper construction against the
//! paper's claims: Pyramid-equivalent locality and failure tolerance,
//! full data parallelism, and weight-proportional placement.

use galloper::{Galloper, GalloperParams, StripeAllocation};
use galloper_erasure::{BlockRole, ErasureCode};
use galloper_pyramid::{subsets, Pyramid};

fn sample_data(len: usize) -> Vec<u8> {
    (0..len)
        .map(|i| (i.wrapping_mul(197).wrapping_add(i >> 8) % 251) as u8)
        .collect()
}

#[test]
fn roundtrip_uniform_many_params() {
    for (k, l, g) in [
        (4, 2, 1),
        (4, 0, 1),
        (4, 0, 2),
        (6, 2, 1),
        (6, 3, 2),
        (8, 4, 1),
        (4, 1, 1),
        (4, 4, 1),
    ] {
        let code = Galloper::uniform(k, l, g, 8).unwrap();
        let data = sample_data(code.message_len());
        let blocks = code.encode(&data).unwrap();
        assert_eq!(blocks.len(), k + l + g);
        let avail: Vec<Option<&[u8]>> = blocks.iter().map(|b| Some(b.as_slice())).collect();
        assert_eq!(code.decode(&avail).unwrap(), data, "({k},{l},{g})");
        // Data extraction without decoding (the FileInputFormat path).
        let refs: Vec<&[u8]> = blocks.iter().map(Vec::as_slice).collect();
        assert_eq!(code.layout().extract_data(&refs), data, "({k},{l},{g})");
    }
}

#[test]
fn repair_plans_match_pyramid_locality() {
    for (k, l, g) in [(4, 2, 1), (6, 2, 1), (6, 3, 2), (8, 4, 1)] {
        let gal = Galloper::uniform(k, l, g, 4).unwrap();
        let pyr = Pyramid::new(k, l, g, 4).unwrap();
        for b in 0..k + l + g {
            let gp = gal.repair_plan(b).unwrap();
            let pp = pyr.repair_plan(b).unwrap();
            assert_eq!(
                gp.sources(),
                pp.sources(),
                "({k},{l},{g}) block {b}: Galloper must visit the same blocks as Pyramid"
            );
        }
    }
}

#[test]
fn reconstruct_every_block_uniform_and_weighted() {
    let params = GalloperParams::new(4, 2, 1).unwrap();
    let allocations = vec![
        StripeAllocation::uniform(params),
        StripeAllocation::from_performances(params, &[1.0, 1.0, 1.0, 0.4, 0.4, 0.4, 1.0], 20)
            .unwrap(),
        StripeAllocation::from_performances(params, &[3.0, 1.0, 2.0, 1.0, 5.0, 1.0, 2.0], 16)
            .unwrap(),
    ];
    for alloc in allocations {
        let code = Galloper::with_allocation(alloc, 8).unwrap();
        let data = sample_data(code.message_len());
        let blocks = code.encode(&data).unwrap();
        for target in 0..7 {
            let plan = code.repair_plan(target).unwrap();
            let sources: Vec<(usize, &[u8])> = plan
                .sources()
                .iter()
                .map(|&s| (s, blocks[s].as_slice()))
                .collect();
            assert_eq!(
                code.reconstruct(target, &sources).unwrap(),
                blocks[target],
                "target {target}"
            );
        }
    }
}

#[test]
fn tolerates_any_g_plus_one_failures() {
    for (k, l, g) in [(4, 2, 1), (6, 3, 1), (4, 2, 2), (6, 2, 2)] {
        let code = Galloper::uniform(k, l, g, 1).unwrap();
        let n = k + l + g;
        for erased in subsets(n, g + 1) {
            let mut avail = vec![true; n];
            for &e in &erased {
                avail[e] = false;
            }
            assert!(
                code.can_decode(&avail),
                "({k},{l},{g}) must survive erasure of {erased:?}"
            );
        }
    }
}

#[test]
fn failure_patterns_match_pyramid_exactly() {
    // The strongest equivalence claim: a Galloper code decodes a pattern
    // iff the Pyramid code with the same parameters does. (Their code
    // spaces are linearly equivalent block-for-block.)
    for (k, l, g) in [(4, 2, 1), (6, 2, 1)] {
        let gal = Galloper::uniform(k, l, g, 1).unwrap();
        let pyr = Pyramid::new(k, l, g, 1).unwrap();
        let n = k + l + g;
        for size in 0..=n {
            for keep in subsets(n, size) {
                let mut avail = vec![false; n];
                for &b in &keep {
                    avail[b] = true;
                }
                assert_eq!(
                    gal.can_decode(&avail),
                    pyr.can_decode(&avail),
                    "({k},{l},{g}) pattern {keep:?}"
                );
            }
        }
    }
}

#[test]
fn failure_patterns_match_pyramid_for_heterogeneous_weights() {
    // Pattern equivalence must hold for *any* allocation, not only
    // aligned/uniform ones (this is exactly where a naive two-step
    // construction with intermediate rotation breaks).
    let params = GalloperParams::new(4, 2, 1).unwrap();
    let pyr = Pyramid::new(4, 2, 1, 1).unwrap();
    let perf_sets: [&[f64]; 3] = [
        &[9.0, 0.3, 1.0, 0.7, 2.0, 1.1, 3.0],
        &[1.0, 1.0, 1.0, 0.4, 0.4, 0.4, 1.0],
        &[5.0, 4.0, 3.0, 2.0, 1.0, 1.0, 1.0],
    ];
    for perfs in perf_sets {
        let alloc = StripeAllocation::from_performances(params, perfs, 17).unwrap();
        let gal = Galloper::with_allocation(alloc, 1).unwrap();
        for size in 0..=7 {
            for keep in subsets(7, size) {
                let mut avail = vec![false; 7];
                for &b in &keep {
                    avail[b] = true;
                }
                assert_eq!(
                    gal.can_decode(&avail),
                    pyr.can_decode(&avail),
                    "perfs {perfs:?} pattern {keep:?}"
                );
            }
        }
    }
}

#[test]
fn decode_under_all_double_failures() {
    let code = Galloper::uniform(4, 2, 1, 8).unwrap();
    let data = sample_data(code.message_len());
    let blocks = code.encode(&data).unwrap();
    for erased in subsets(7, 2) {
        let avail: Vec<Option<&[u8]>> = (0..7)
            .map(|b| (!erased.contains(&b)).then(|| blocks[b].as_slice()))
            .collect();
        assert_eq!(code.decode(&avail).unwrap(), data, "erased {erased:?}");
    }
}

#[test]
fn weighted_placement_follows_performance() {
    // Fig. 2b / Fig. 10: the amount of original data per block tracks the
    // server's performance.
    let code =
        Galloper::from_performances(4, 2, 1, &[1.0, 1.0, 1.0, 0.4, 0.4, 0.4, 1.0], 20, 16).unwrap();
    let layout = code.layout();
    // Fast group servers hold more than throttled ones.
    for fast in 0..3 {
        for slow in 3..6 {
            assert!(
                layout.data_fraction(fast) > layout.data_fraction(slow),
                "block {fast} ({}) vs {slow} ({})",
                layout.data_fraction(fast),
                layout.data_fraction(slow)
            );
        }
    }
    // Everything still round-trips.
    let data = sample_data(code.message_len());
    let blocks = code.encode(&data).unwrap();
    let refs: Vec<&[u8]> = blocks.iter().map(Vec::as_slice).collect();
    assert_eq!(layout.extract_data(&refs), data);
}

#[test]
fn parallelism_extends_to_all_blocks() {
    // Fig. 2: with a Pyramid code only k of k+l+g blocks hold original
    // data; with Galloper all of them do.
    let gal = Galloper::uniform(4, 2, 1, 8).unwrap();
    let pyr = Pyramid::new(4, 2, 1, 8).unwrap();
    let gl = gal.layout();
    let pl = pyr.layout();
    let gal_useful = (0..7).filter(|&b| gl.data_stripes(b) > 0).count();
    let pyr_useful = (0..7).filter(|&b| pl.data_stripes(b) > 0).count();
    assert_eq!(gal_useful, 7);
    assert_eq!(pyr_useful, 4);
}

#[test]
fn storage_overhead_equals_pyramid() {
    let gal = Galloper::uniform(4, 2, 1, 8).unwrap();
    let pyr = Pyramid::new(4, 2, 1, 14).unwrap();
    assert!((gal.storage_overhead() - pyr.storage_overhead()).abs() < 1e-12);
    assert!((gal.storage_overhead() - 1.75).abs() < 1e-12);
}

#[test]
fn roles_follow_grouped_order() {
    let code = Galloper::uniform(4, 2, 1, 8).unwrap();
    let expected = [
        BlockRole::Data,
        BlockRole::Data,
        BlockRole::LocalParity,
        BlockRole::Data,
        BlockRole::Data,
        BlockRole::LocalParity,
        BlockRole::GlobalParity,
    ];
    for (b, &want) in expected.iter().enumerate() {
        assert_eq!(code.block_role(b), want, "block {b}");
    }
}

#[test]
fn special_case_l0_is_mds() {
    // (4, 0, 2): any 4 of 6 blocks decode — same tolerance as (4,2) RS,
    // but with data spread across all blocks.
    let code = Galloper::uniform(4, 0, 2, 4).unwrap();
    let data = sample_data(code.message_len());
    let blocks = code.encode(&data).unwrap();
    for keep in subsets(6, 4) {
        let avail: Vec<Option<&[u8]>> = (0..6)
            .map(|b| keep.contains(&b).then(|| blocks[b].as_slice()))
            .collect();
        assert_eq!(code.decode(&avail).unwrap(), data, "keep {keep:?}");
    }
    for keep in subsets(6, 3) {
        let mut avail = [false; 6];
        for &b in &keep {
            avail[b] = true;
        }
        assert!(!code.can_decode(&avail), "keep {keep:?}");
    }
}

#[test]
fn figure_3_data_placement() {
    // The toy example of Fig. 3: weights (6/7 ×4, 4/7), N = 7. Blocks 0-3
    // carry 6 stripes of original data each, block 4 carries 4.
    let params = GalloperParams::new(4, 0, 1).unwrap();
    let w = [6.0 / 7.0, 6.0 / 7.0, 6.0 / 7.0, 6.0 / 7.0, 4.0 / 7.0];
    let alloc = StripeAllocation::from_weights(params, &w, 7).unwrap();
    let code = Galloper::with_allocation(alloc, 4).unwrap();
    let layout = code.layout();
    assert_eq!(
        (0..5).map(|b| layout.data_stripes(b)).collect::<Vec<_>>(),
        vec![6, 6, 6, 6, 4]
    );
    // S1..S28 are assigned to blocks in order (Fig. 3's labels).
    assert_eq!(layout.block_assignment(0), &[0, 1, 2, 3, 4, 5]);
    assert_eq!(layout.block_assignment(4), &[24, 25, 26, 27]);
}

#[test]
fn heterogeneous_l0_allocation() {
    // l = 0 heterogeneous path, checking the LP + water-filling agreement
    // end to end through code construction.
    let code = Galloper::from_performances(4, 0, 1, &[2.0, 1.0, 1.0, 1.0, 1.0], 12, 8).unwrap();
    let layout = code.layout();
    assert!(layout.data_fraction(0) > layout.data_fraction(1));
    let data = sample_data(code.message_len());
    let blocks = code.encode(&data).unwrap();
    let refs: Vec<&[u8]> = blocks.iter().map(Vec::as_slice).collect();
    assert_eq!(layout.extract_data(&refs), data);
}

#[test]
fn local_parity_relation_on_encoded_data() {
    // Parity-check survival (§V-A): in stored blocks, every stripe of a
    // local parity block is a fixed linear combination of its group's
    // stripes. We verify behaviourally: zero out a group member and
    // rebuild it from the group alone, for every member, under a
    // non-uniform allocation.
    let params = GalloperParams::new(6, 2, 1).unwrap();
    let alloc = StripeAllocation::from_performances(
        params,
        &[2.0, 1.0, 1.0, 1.0, 1.5, 1.0, 1.0, 1.0, 1.0],
        12,
    )
    .unwrap();
    let code = Galloper::with_allocation(alloc, 8).unwrap();
    let data = sample_data(code.message_len());
    let blocks = code.encode(&data).unwrap();
    for j in 0..2 {
        for target in code.params().group_blocks(j) {
            let plan = code.repair_plan(target).unwrap();
            assert_eq!(plan.fan_in(), 3, "locality k/l = 3");
            let sources: Vec<(usize, &[u8])> = plan
                .sources()
                .iter()
                .map(|&s| (s, blocks[s].as_slice()))
                .collect();
            assert_eq!(code.reconstruct(target, &sources).unwrap(), blocks[target]);
        }
    }
}
