//! Heterogeneous cluster walkthrough (paper §IV-C, §V-B, Fig. 10): given
//! measured server performances, derive weights with the paper's linear
//! program, rationalize them onto a stripe grid, and show how the data
//! placement tracks performance.
//!
//! Run with: `cargo run --example heterogeneous_cluster`

use galloper_suite::codes::{
    solve_weights, ErasureCode, Galloper, GalloperParams, StripeAllocation,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let params = GalloperParams::new(4, 2, 1)?;

    // Measured performance of the 7 servers (e.g. sequential-read MB/s or
    // map-task throughput). Group 2's servers (blocks 3-5) run at 40% —
    // the Fig. 10 scenario — and one server is much faster than the rest.
    let perfs = [250.0, 100.0, 100.0, 40.0, 40.0, 40.0, 100.0];
    println!("server performances: {perfs:?}");

    // Step 1: the paper's throttling LP (minimize Σ d_i) produces target
    // weights w_i = k(p_i - d_i)/Σ(p - d), each within [0, 1].
    let weights = solve_weights(params, &perfs)?;
    println!("\nLP weights (sum = k = 4):");
    for (i, w) in weights.iter().enumerate() {
        println!("  block {i}: w = {w:.4}");
    }
    let sum: f64 = weights.iter().sum();
    assert!((sum - 4.0).abs() < 1e-6);

    // The fast server is capped: no block can hold more than one block's
    // worth of data, so its surplus performance is "thrown away" (d > 0).
    assert!(weights[0] <= 1.0 + 1e-9);

    // Step 2: rationalize onto a stripe grid (here N = 28).
    let alloc = StripeAllocation::from_weights(params, &weights, 28)?;
    println!("\nstripe allocation at N = {}:", alloc.resolution());
    println!("  counts: {:?}", alloc.counts());
    alloc.verify().map_err(std::io::Error::other)?;

    // Step 3: build the code and inspect the realized layout.
    let code = Galloper::with_allocation(alloc, 32 * 1024)?;
    let layout = code.layout();
    println!("\nrealized data fraction per block:");
    for b in 0..code.num_blocks() {
        let bar = "#".repeat((layout.data_fraction(b) * 40.0) as usize);
        println!(
            "  block {b}: {:>5.1}% {bar}",
            layout.data_fraction(b) * 100.0
        );
    }

    // Faster servers hold more data; the throttled group holds the least.
    assert!(layout.data_fraction(0) >= layout.data_fraction(1));
    assert!(layout.data_fraction(1) > layout.data_fraction(3));

    // Everything still round-trips and repairs locally.
    let data: Vec<u8> = (0..code.message_len()).map(|i| (i % 241) as u8).collect();
    let blocks = code.encode(&data)?;
    let refs: Vec<&[u8]> = blocks.iter().map(|b| b.as_slice()).collect();
    assert_eq!(layout.extract_data(&refs), data);
    println!("\nencode → extract round-trip OK; locality preserved:");
    for b in 0..code.num_blocks() {
        println!(
            "  block {b} repairs from {} blocks",
            code.repair_plan(b)?.fan_in()
        );
    }
    Ok(())
}
