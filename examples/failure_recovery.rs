//! Storage-operations scenario (paper Fig. 1/Fig. 8): a server dies and
//! its block must be rebuilt. Compare the disk I/O and recovery time of
//! Reed-Solomon, Pyramid, and Galloper codes on a simulated cluster, then
//! verify the rebuilt bytes against a real encode.
//!
//! Run with: `cargo run --example failure_recovery`

use galloper_suite::codes::{ErasureCode, Galloper, Pyramid, ReedSolomon};
use galloper_suite::sim::{simulate_server_failure, Cluster, Placement, ServerSpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let block_mb = 45.0;
    let cluster = Cluster::homogeneous(9, ServerSpec::default());

    // Three codes protecting the same 180 MB object with 2-failure
    // tolerance.
    let rs = ReedSolomon::new(4, 2, 1024)?;
    let pyramid = Pyramid::new(4, 2, 1, 1024)?;
    let galloper = Galloper::uniform(4, 2, 1, 1024)?;

    println!("server 0 fails; its block is rebuilt on a spare server.\n");
    println!(
        "{:<14} {:>8} {:>14} {:>14} {:>10}",
        "code", "blocks", "disk read (MB)", "recovery (s)", "overhead"
    );
    for (name, code) in [
        ("Reed-Solomon", &rs as &dyn ErasureCode),
        ("Pyramid", &pyramid as &dyn ErasureCode),
        ("Galloper", &galloper as &dyn ErasureCode),
    ] {
        let n = code.num_blocks();
        let placement = Placement::identity(n);
        let plans: Vec<_> = (0..n)
            .map(|b| code.repair_plan(b).expect("valid block"))
            .collect();
        let report = simulate_server_failure(&cluster, &placement, &plans, block_mb, 0, n + 1);
        println!(
            "{:<14} {:>8} {:>14.0} {:>14.3} {:>9.2}x",
            name,
            n,
            report.disk_read_mb,
            report.completion_secs,
            code.storage_overhead(),
        );
    }

    // And prove the arithmetic is real: encode, drop a block, rebuild it,
    // compare bit-for-bit.
    let data: Vec<u8> = (0..galloper.message_len())
        .map(|i| (i % 253) as u8)
        .collect();
    let blocks = galloper.encode(&data)?;
    let plan = galloper.repair_plan(3)?;
    let sources: Vec<(usize, &[u8])> = plan
        .sources()
        .iter()
        .map(|&s| (s, blocks[s].as_slice()))
        .collect();
    assert_eq!(galloper.reconstruct(3, &sources)?, blocks[3]);
    println!(
        "\nGalloper block 3 rebuilt bit-exactly from {:?}",
        plan.sources()
    );

    // The saving the paper leads with: a local repair reads half the data
    // a Reed-Solomon repair does (Fig. 1), at equal failure tolerance.
    let rs_io = rs.repair_plan(0)?.disk_io_bytes(45);
    let gal_io = galloper.repair_plan(0)?.disk_io_bytes(45);
    println!(
        "repairing one data block: RS reads {rs_io} MB, Galloper reads {gal_io} MB ({}% saved)",
        100 * (rs_io - gal_io) / rs_io
    );
    Ok(())
}
