//! Data-analytics scenario (paper §VII-B, Fig. 9): run simulated
//! wordcount and terasort jobs over the same data encoded with a Pyramid
//! code and a Galloper code, and compare completion times.
//!
//! Run with: `cargo run --example mapreduce_analytics`

use galloper_suite::codes::{ErasureCode, Galloper, Pyramid};
use galloper_suite::sim::{
    layout_splits, simulate_job, Cluster, JobConfig, Placement, ServerSpec, Workload,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 30 modest servers; 7 coded blocks of 450 MB on servers 0..6.
    let cluster = Cluster::homogeneous(
        30,
        ServerSpec {
            disk_read_mbps: 150.0,
            disk_write_mbps: 120.0,
            net_mbps: 120.0,
            cpu_mbps: 60.0,
            cpu_factor: 1.0,
            slots: 2,
        },
    );
    let placement = Placement::identity(7);
    let block_mb = 450.0;

    let pyramid = Pyramid::new(4, 2, 1, 1)?;
    let galloper = Galloper::uniform(4, 2, 1, 1)?;

    for workload in [Workload::terasort(), Workload::wordcount()] {
        println!("== {} ==", workload.name);
        for (name, layout) in [
            ("Pyramid ", pyramid.layout()),
            ("Galloper", galloper.layout()),
        ] {
            // The split generator is the paper's modified FileInputFormat:
            // map tasks are created only over original-data extents.
            let splits = layout_splits(&layout, &placement, block_mb, block_mb + 1.0);
            let report = simulate_job(
                &cluster,
                &splits,
                &JobConfig {
                    workload: workload.clone(),
                    reducers: (7..15).collect(),
                },
            );
            println!(
                "  {name}: {} map tasks | map {:7.1}s | reduce {:6.1}s | job {:7.1}s",
                splits.len(),
                report.map_secs,
                report.reduce_secs,
                report.job_secs,
            );
        }
        println!();
    }

    println!("Galloper runs 7 smaller map tasks where Pyramid runs 4 big ones —");
    println!("the parallelism of Fig. 2b, bounded by the ideal 1 - 4/7 = 42.9% saving.");
    Ok(())
}
