//! Quickstart: encode a file with the paper's running example — a
//! (4, 2, 1) Galloper code — and walk through every property the paper
//! advertises: data in all blocks, cheap local repair, and g+1 failure
//! tolerance.
//!
//! Run with: `cargo run --example quickstart`

use galloper_suite::codes::{ErasureCode, Galloper, Pyramid};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's running example: k = 4 data blocks, l = 2 local parity
    // blocks, g = 1 global parity block, on homogeneous servers.
    let code = Galloper::uniform(4, 2, 1, 64 * 1024)?;
    println!(
        "(4, 2, 1) Galloper code: {} blocks of {} KiB, N = {} stripes/block, overhead {:.2}x",
        code.num_blocks(),
        code.block_len() / 1024,
        code.allocation().resolution(),
        code.storage_overhead(),
    );

    // Encode a message.
    let data: Vec<u8> = (0..code.message_len()).map(|i| (i % 251) as u8).collect();
    let blocks = code.encode(&data)?;

    // 1. Parallelism: every block holds original data (Fig. 2b/Fig. 3).
    println!(
        "\noriginal data per block (a Pyramid code would have 4/7 blocks at 100% and 3/7 at 0%):"
    );
    let layout = code.layout();
    for b in 0..code.num_blocks() {
        println!(
            "  block {}: {:>5.1}% original data ({:?})",
            b,
            layout.data_fraction(b) * 100.0,
            code.block_role(b),
        );
    }
    // A compute framework can read the original data without decoding:
    let refs: Vec<&[u8]> = blocks.iter().map(|b| b.as_slice()).collect();
    assert_eq!(layout.extract_data(&refs), data);

    // 2. Locality: a data block repairs from its group only (Fig. 1b).
    let plan = code.repair_plan(0)?;
    println!(
        "\nrepairing block 0 reads {} blocks {:?} — a (4,2) Reed-Solomon code would read 4",
        plan.fan_in(),
        plan.sources(),
    );
    let sources: Vec<(usize, &[u8])> = plan
        .sources()
        .iter()
        .map(|&s| (s, blocks[s].as_slice()))
        .collect();
    let rebuilt = code.reconstruct(0, &sources)?;
    assert_eq!(rebuilt, blocks[0]);
    println!(
        "block 0 rebuilt bit-exactly from {} local reads",
        plan.fan_in()
    );

    // 3. Failure tolerance: any g + 1 = 2 failures decode (like Pyramid).
    let mut available: Vec<Option<&[u8]>> = blocks.iter().map(|b| Some(b.as_slice())).collect();
    available[1] = None;
    available[6] = None; // a data block AND the global parity
    let decoded = code.decode(&available)?;
    assert_eq!(decoded, data);
    println!("\ndecoded the full message with blocks 1 and 6 erased");

    // Same tolerance as the Pyramid code it is derived from:
    let pyramid = Pyramid::new(4, 2, 1, 64 * 1024)?;
    for pattern in [[0usize, 6], [2, 5], [0, 3]] {
        let mut avail = vec![true; 7];
        for &b in &pattern {
            avail[b] = false;
        }
        assert_eq!(code.can_decode(&avail), pyramid.can_decode(&avail));
    }
    println!("failure patterns agree with the (4, 2, 1) Pyramid code");
    Ok(())
}
