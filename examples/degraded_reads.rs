//! Degraded-read scenario: serve byte-range reads of the original data
//! while a server is down, and compare how many bytes each code family
//! has to fetch to do it.
//!
//! Run with: `cargo run --release --example degraded_reads`

use galloper_suite::codes::{ErasureCode, Galloper, ReedSolomon};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 64 KiB stripes; Galloper (4,2,1) with N = 7 → 448 KiB blocks.
    let galloper = Galloper::uniform(4, 2, 1, 64 * 1024)?;
    let rs = ReedSolomon::new(4, 2, galloper.block_len())?;

    let data: Vec<u8> = (0..galloper.message_len())
        .map(|i| (i % 251) as u8)
        .collect();
    let g_blocks = galloper.encode(&data)?;
    let rs_data: Vec<u8> = (0..rs.message_len()).map(|i| (i % 251) as u8).collect();
    let rs_blocks = rs.encode(&rs_data)?;

    // Server hosting block 0 dies.
    let g_avail: Vec<Option<&[u8]>> = g_blocks
        .iter()
        .enumerate()
        .map(|(i, b)| (i != 0).then_some(b.as_slice()))
        .collect();
    let rs_avail: Vec<Option<&[u8]>> = rs_blocks
        .iter()
        .enumerate()
        .map(|(i, b)| (i != 0).then_some(b.as_slice()))
        .collect();

    // Read 100 KiB that lives (partly) on the dead server.
    let (offset, len) = (0, 100 * 1024);

    let (g_bytes, g_stats) = galloper.as_linear().read_range(offset, len, &g_avail)?;
    assert_eq!(g_bytes, &data[offset..offset + len]);
    println!(
        "Galloper degraded read of {} KiB: fetched {} KiB in {} stripes (full decode: {})",
        len / 1024,
        g_stats.bytes_read / 1024,
        g_stats.stripes_read,
        g_stats.full_decode,
    );

    let (rs_bytes, rs_stats) = rs.as_linear().read_range(offset, len, &rs_avail)?;
    assert_eq!(rs_bytes, &rs_data[offset..offset + len]);
    println!(
        "RS       degraded read of {} KiB: fetched {} KiB in {} stripes (full decode: {})",
        len / 1024,
        rs_stats.bytes_read / 1024,
        rs_stats.stripes_read,
        rs_stats.full_decode,
    );

    println!(
        "\nGalloper recovers each missing stripe from {} peer stripes (its local group),",
        galloper.repair_plan(0)?.fan_in()
    );
    println!(
        "RS from {} — the locality advantage applies to reads, not just repairs.",
        rs.repair_plan(0)?.fan_in()
    );

    // A healthy read touches exactly the stripes holding the range.
    let healthy: Vec<Option<&[u8]>> = g_blocks.iter().map(|b| Some(b.as_slice())).collect();
    let (_, stats) = galloper.as_linear().read_range(offset, len, &healthy)?;
    println!(
        "\nhealthy read of the same range: {} KiB fetched (no amplification)",
        stats.bytes_read / 1024
    );
    Ok(())
}
