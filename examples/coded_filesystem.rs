//! Distributed-file-system scenario: run an HDFS-like namespace over
//! Galloper-coded storage, survive a rack's worth of trouble, and compare
//! the repair bill against Reed–Solomon.
//!
//! Run with: `cargo run --release --example coded_filesystem`

use galloper_suite::codes::{Galloper, ReedSolomon};
use galloper_suite::dfs::Dfs;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 12-server mini-cluster storing three files under a (4,2,1)
    // Galloper code.
    let mut dfs = Dfs::new(12, Galloper::uniform(4, 2, 1, 64 * 1024)?);
    let files = [
        ("logs/2026-07-01.log", 3_000_000usize),
        ("tables/users.parquet", 1_200_000),
        ("models/ranker.bin", 600_000),
    ];
    for (name, len) in files {
        let data: Vec<u8> = (0..len).map(|i| (i % 251) as u8).collect();
        dfs.put(name, &data)?;
    }
    println!(
        "stored {} files over {} servers",
        files.len(),
        dfs.num_servers()
    );
    println!(
        "blocks per server: {:?}",
        (0..12).map(|s| dfs.blocks_on(s)).collect::<Vec<_>>()
    );

    // Two servers die (the code tolerates g + 1 = 2).
    dfs.fail_server(2);
    dfs.fail_server(7);
    println!("\nservers 2 and 7 failed; fsck:");
    for f in &dfs.fsck().files {
        println!("  {}: readable = {}", f.name, f.is_readable());
    }

    // Reads still work, degraded.
    let data = dfs.get("logs/2026-07-01.log")?;
    println!(
        "degraded read of logs/2026-07-01.log: {} bytes OK",
        data.len()
    );

    // Repair: two fresh machines join.
    dfs.revive_server(2);
    dfs.revive_server(7);
    let summary = dfs.repair()?;
    println!(
        "\nrepair: {} blocks locally, {} via decode, {:.1} MB read",
        summary.repaired_locally,
        summary.repaired_via_decode,
        summary.bytes_read as f64 / (1024.0 * 1024.0)
    );
    assert!(dfs.fsck().all_healthy());

    // The same incident under Reed-Solomon costs more repair I/O.
    let mut rs_dfs = Dfs::new(12, ReedSolomon::new(4, 2, 7 * 64 * 1024)?);
    for (name, len) in files {
        let data: Vec<u8> = (0..len).map(|i| (i % 251) as u8).collect();
        rs_dfs.put(name, &data)?;
    }
    rs_dfs.fail_server(2);
    rs_dfs.fail_server(7);
    rs_dfs.revive_server(2);
    rs_dfs.revive_server(7);
    let rs_summary = rs_dfs.repair()?;
    println!(
        "same incident, (4,2) Reed-Solomon: {:.1} MB read ({:.1}x more)",
        rs_summary.bytes_read as f64 / (1024.0 * 1024.0),
        rs_summary.bytes_read as f64 / summary.bytes_read as f64
    );
    Ok(())
}
