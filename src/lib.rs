//! Umbrella crate for the Galloper reproduction: re-exports every
//! workspace crate under one roof for the examples and integration tests.
//!
//! * [`codes`] — the four erasure-code families.
//! * [`field`] / [`linalg`] / [`lp`] — the mathematical substrates.
//! * [`sim`] — the storage-cluster and MapReduce simulators.
//! * [`net`] — the networked object store (daemons, gateway, protocol).
//! * [`Error`] — the unified error surface over all of the above, with
//!   a stable wire classification ([`Error::kind`]).
//!
//! Downstream users should normally depend on the individual crates
//! (`galloper`, `galloper-rs`, …); this crate exists so the repository's
//! `examples/` and `tests/` can exercise the whole system together.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;

pub use error::Error;

/// GF(2⁸) arithmetic (re-export of `galloper-gf`).
pub mod field {
    pub use galloper_gf::*;
}

/// Dense linear algebra over GF(2⁸) (re-export of `galloper-linalg`).
pub mod linalg {
    pub use galloper_linalg::*;
}

/// The simplex LP solver (re-export of `galloper-lp`).
pub mod lp {
    pub use galloper_lp::*;
}

/// The erasure-code families and shared vocabulary.
pub mod codes {
    pub use galloper::{
        solve_weights, water_filling, Galloper, GalloperError, GalloperParams, ParamsError,
        StripeAllocation, WeightError,
    };
    pub use galloper_carousel::Carousel;
    pub use galloper_codes::{build_code, BoxedCode, BuildError, CodeSpec};
    pub use galloper_erasure::{
        BlockRole, CodeError, ConstructionError, DataLayout, ErasureCode, LinearCode, ObjectCodec,
        ObjectManifest, ReadStats, RepairPlan,
    };
    pub use galloper_pyramid::Pyramid;
    pub use galloper_rs::ReedSolomon;
}

/// The streaming bounded-memory codec drivers.
pub mod stream {
    pub use galloper_erasure::stream::*;
}

/// The erasure-coded distributed file system.
pub mod dfs {
    pub use galloper_dfs::*;
}

/// The networked object store: wire protocol, storage daemon, gateway,
/// and remote block-store client (re-export of `galloper-net`).
pub mod net {
    pub use galloper_net::*;
}

/// CLI file operations and benchmark diffing (re-export of
/// `galloper-cli`).
pub mod cli {
    pub use galloper_cli::*;
}

/// The cluster and MapReduce simulators.
pub mod sim {
    pub use galloper_simmr::{
        layout_splits, simulate_job, simulate_job_sequence, simulate_job_speculative, InputSplit,
        JobArrival, JobConfig, JobReport, SpeculationConfig, Workload,
    };
    pub use galloper_simstore::{
        simulate_repair, simulate_server_failure, ActivityGraph, ActivityId, Cluster,
        FailureReport, Placement, RepairOutcome, ResourceKind, RunResult, ServerSpec, Work,
    };
}
