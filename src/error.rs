//! The unified error surface: one [`Error`] wrapping every failure a
//! whole-system caller can hit, with intact [`source`] chains and a
//! stable wire classification.
//!
//! The individual crates keep their own precise error enums
//! ([`DfsError`], [`CliError`], [`ProtocolError`], …) — callers working
//! against one subsystem should match on those. This type exists for
//! the outermost layer (examples, integration tests, service `main`s)
//! where failures from several subsystems converge: every constituent
//! error converts in with `?`, `source()` walks back to the original,
//! and [`Error::kind`] maps any of them onto the same stable
//! [`ErrorKind`] codes the network protocol stamps into `Err` frames —
//! so an in-process failure and its remote twin classify identically.
//!
//! [`source`]: std::error::Error::source

use std::fmt;

use galloper_cli::CliError;
use galloper_codes::BuildError;
use galloper_dfs::{DfsError, StoreError};
use galloper_erasure::{CodeError, ConstructionError};
use galloper_net::{kind_of_dfs, ErrorKind, ProtocolError};

/// Any failure from the Galloper stack, one layer deep: coding,
/// construction, file-system, store, CLI file operations, network
/// protocol, or raw I/O.
#[derive(Debug)]
#[non_exhaustive]
pub enum Error {
    /// A distributed-file-system operation failed.
    Dfs(DfsError),
    /// A block-store backend failed.
    Store(StoreError),
    /// A CLI file operation (encode/decode/repair/fsck) failed.
    Cli(CliError),
    /// A code spec could not be built into a code.
    Build(BuildError),
    /// A code construction was mathematically invalid.
    Construction(ConstructionError),
    /// An encode/decode/repair failed.
    Code(CodeError),
    /// Wire-protocol framing or encoding failed.
    Protocol(ProtocolError),
    /// Raw I/O outside any of the layers above.
    Io(std::io::Error),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Dfs(e) => write!(f, "dfs: {e}"),
            Error::Store(e) => write!(f, "store: {e}"),
            Error::Cli(e) => write!(f, "cli: {e}"),
            Error::Build(e) => write!(f, "code spec: {e}"),
            Error::Construction(e) => write!(f, "construction: {e}"),
            Error::Code(e) => write!(f, "coding: {e}"),
            Error::Protocol(e) => write!(f, "protocol: {e}"),
            Error::Io(e) => write!(f, "i/o: {e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Dfs(e) => Some(e),
            Error::Store(e) => Some(e),
            Error::Cli(e) => Some(e),
            Error::Build(e) => Some(e),
            Error::Construction(e) => Some(e),
            Error::Code(e) => Some(e),
            Error::Protocol(e) => Some(e),
            Error::Io(e) => Some(e),
        }
    }
}

impl Error {
    /// The stable wire classification of this error — the same
    /// [`ErrorKind`] a gateway would stamp into an `Err` frame for the
    /// equivalent remote failure, so retry policies can treat local
    /// and remote errors uniformly (see
    /// [`ErrorKind::is_retryable`]).
    pub fn kind(&self) -> ErrorKind {
        match self {
            Error::Dfs(e) => kind_of_dfs(e),
            Error::Store(_) => ErrorKind::Store,
            Error::Cli(e) => match e {
                CliError::Io(_) => ErrorKind::Io,
                CliError::Code(_) | CliError::Spec(_) => ErrorKind::Code,
                CliError::CorruptBlock { .. } | CliError::MissingSources(_) => ErrorKind::DataLoss,
                _ => ErrorKind::Unknown,
            },
            Error::Build(_) | Error::Construction(_) | Error::Code(_) => ErrorKind::Code,
            Error::Protocol(ProtocolError::Io(_)) => ErrorKind::Io,
            Error::Protocol(_) => ErrorKind::Protocol,
            Error::Io(_) => ErrorKind::Io,
        }
    }
}

impl From<DfsError> for Error {
    fn from(e: DfsError) -> Error {
        Error::Dfs(e)
    }
}

impl From<StoreError> for Error {
    fn from(e: StoreError) -> Error {
        Error::Store(e)
    }
}

impl From<CliError> for Error {
    fn from(e: CliError) -> Error {
        Error::Cli(e)
    }
}

impl From<BuildError> for Error {
    fn from(e: BuildError) -> Error {
        Error::Build(e)
    }
}

impl From<ConstructionError> for Error {
    fn from(e: ConstructionError) -> Error {
        Error::Construction(e)
    }
}

impl From<CodeError> for Error {
    fn from(e: CodeError) -> Error {
        Error::Code(e)
    }
}

impl From<ProtocolError> for Error {
    fn from(e: ProtocolError) -> Error {
        Error::Protocol(e)
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Error {
        Error::Io(e)
    }
}
