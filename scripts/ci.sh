#!/usr/bin/env bash
# The full local quality gate: formatting, lints (warnings are errors),
# and the complete workspace test suite. Everything runs offline.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy (-D warnings)"
cargo clippy --release --workspace --all-targets -- -D warnings

echo "==> cargo doc (-D warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace

echo "==> tier-1: cargo build + test"
cargo build --release
cargo test -q --release

echo "==> full workspace tests (auto-dispatched kernel)"
cargo test -q --release --workspace

echo "==> full workspace tests (GALLOPER_KERNEL=scalar)"
GALLOPER_KERNEL=scalar cargo test -q --release --workspace

# The chaos soak (tests/chaos.rs) already ran above on its default
# seed; re-run it on a second pinned schedule under both kernel
# backends so CI always exercises one alternate fault trajectory.
echo "==> chaos soak (pinned seed, auto + scalar kernels)"
GALLOPER_FAULT_SEED=2147483647 cargo test -q --release --test chaos
GALLOPER_FAULT_SEED=2147483647 GALLOPER_KERNEL=scalar \
  cargo test -q --release --test chaos

echo "==> miri: gf256 kernel differential suite"
if cargo +nightly miri --version >/dev/null 2>&1; then
  cargo +nightly miri test -p galloper-gf --test kernel_differential
else
  echo "miri: not installed; skipping (install: rustup +nightly component add miri)"
fi

echo "ci: all green"
