#!/usr/bin/env bash
# The full local quality gate: formatting, lints (warnings are errors),
# and the complete workspace test suite. Everything runs offline.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy (-D warnings)"
cargo clippy --release --workspace --all-targets -- -D warnings

echo "==> cargo doc (-D warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace

echo "==> tier-1: cargo build + test"
cargo build --release
cargo test -q --release

echo "==> full workspace tests"
cargo test -q --release --workspace

echo "ci: all green"
