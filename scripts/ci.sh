#!/usr/bin/env bash
# The full local quality gate: formatting, lints (warnings are errors),
# and the complete workspace test suite. Everything runs offline.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy (-D warnings)"
cargo clippy --release --workspace --all-targets -- -D warnings

echo "==> cargo doc (-D warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace

echo "==> tier-1: cargo build + test"
cargo build --release
cargo test -q --release

echo "==> full workspace tests (auto-dispatched kernel)"
cargo test -q --release --workspace

echo "==> full workspace tests (GALLOPER_KERNEL=scalar)"
GALLOPER_KERNEL=scalar cargo test -q --release --workspace

# The chaos soak (tests/chaos.rs) already ran above on its default
# seed; re-run it on a second pinned schedule under both kernel
# backends so CI always exercises one alternate fault trajectory.
echo "==> chaos soak (pinned seed, auto + scalar kernels)"
GALLOPER_FAULT_SEED=2147483647 cargo test -q --release --test chaos
GALLOPER_FAULT_SEED=2147483647 GALLOPER_KERNEL=scalar \
  cargo test -q --release --test chaos

# Bench-regression gate: re-run the short pinned-seed benches with the
# exact configuration that produced results/baselines/ and fail on any
# gated-metric regression (simulated times, disk I/O, data loss).
# Machine-dependent wall-clock numbers are reported but never gated.
echo "==> bench-regression gate (galloper bench-diff --check)"
cargo build --release -p galloper-bench -p galloper-cli --bins
BENCH_TMP="$(mktemp -d)"
trap 'rm -rf "$BENCH_TMP"' EXIT
GALLOPER_FAULT_SEED=2147483647 GALLOPER_CHAOS_TICKS=120 GALLOPER_OBJECT_KB=48 \
  GALLOPER_JSON_OUT="$BENCH_TMP" ./target/release/chaos >/dev/null
GALLOPER_BLOCK_MB=0.5 GALLOPER_REPS=3 \
  GALLOPER_JSON_OUT="$BENCH_TMP" ./target/release/fig8 >/dev/null
for bench in BENCH_chaos.json BENCH_fig8.json; do
  GALLOPER_BENCH_BASELINE=results/baselines \
    ./target/release/galloper bench-diff "$BENCH_TMP/$bench" --check
done

echo "==> miri: gf256 kernel differential suite"
if cargo +nightly miri --version >/dev/null 2>&1; then
  cargo +nightly miri test -p galloper-gf --test kernel_differential
else
  echo "miri: not installed; skipping (install: rustup +nightly component add miri)"
fi

echo "ci: all green"
