#!/usr/bin/env bash
# The full local quality gate: formatting, lints (warnings are errors),
# and the complete workspace test suite. Everything runs offline.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy (-D warnings)"
cargo clippy --release --workspace --all-targets -- -D warnings

echo "==> cargo doc (-D warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace

echo "==> tier-1: cargo build + test"
cargo build --release
cargo test -q --release

echo "==> full workspace tests (auto-dispatched kernel)"
cargo test -q --release --workspace

echo "==> full workspace tests (GALLOPER_KERNEL=scalar)"
GALLOPER_KERNEL=scalar cargo test -q --release --workspace

# The chaos soak (tests/chaos.rs) already ran above on its default
# seed; re-run it on a second pinned schedule under both kernel
# backends so CI always exercises one alternate fault trajectory.
echo "==> chaos soak (pinned seed, auto + scalar kernels)"
GALLOPER_FAULT_SEED=2147483647 cargo test -q --release --test chaos
GALLOPER_FAULT_SEED=2147483647 GALLOPER_KERNEL=scalar \
  cargo test -q --release --test chaos

# Bench-regression gate: re-run the short pinned-seed benches with the
# exact configuration that produced results/baselines/ and fail on any
# gated-metric regression (simulated times, disk I/O, data loss).
# Machine-dependent wall-clock numbers in these two are reported but
# never gated.
echo "==> bench-regression gate (galloper bench-diff --check)"
cargo build --release -p galloper-bench -p galloper-cli --bins
BENCH_TMP="$(mktemp -d)"
trap 'rm -rf "$BENCH_TMP"' EXIT
GALLOPER_FAULT_SEED=2147483647 GALLOPER_CHAOS_TICKS=120 GALLOPER_OBJECT_KB=48 \
  GALLOPER_JSON_OUT="$BENCH_TMP" ./target/release/chaos >/dev/null
GALLOPER_BLOCK_MB=0.5 GALLOPER_REPS=3 \
  GALLOPER_JSON_OUT="$BENCH_TMP" ./target/release/fig8 >/dev/null
for bench in BENCH_chaos.json BENCH_fig8.json; do
  GALLOPER_BENCH_BASELINE=results/baselines \
    ./target/release/galloper bench-diff "$BENCH_TMP/$bench" --check
done

# Zero-copy pipeline gate: quick-mode run (same 16 MB / 3-rep config
# that produced the committed baseline; the bench defaults its working
# dir to tmpfs so writeback throttling can't pollute it). Stage and
# end-to-end MB/s rows ARE gated here — they measure syscall/copy/
# coding overhead this codebase controls, not disk speed — but with a
# generous threshold because absolute throughput is machine-sensitive.
echo "==> zero-copy pipeline gate (BENCH_pipeline.json vs baseline)"
GALLOPER_PIPELINE_MB=16 GALLOPER_REPS=3 \
  GALLOPER_JSON_OUT="$BENCH_TMP" ./target/release/pipeline >/dev/null
GALLOPER_BENCH_BASELINE=results/baselines \
  ./target/release/galloper bench-diff "$BENCH_TMP/BENCH_pipeline.json" --check --threshold 40

# Networked-store smoke: a real 3-daemon + gateway cluster on
# loopback. Put an object, read it back byte-exact, kill -9 one
# daemon (a genuine machine loss — its PID comes from the serve
# handshake), and require the degraded read to still be byte-exact.
echo "==> serve smoke (3 daemons + gateway, kill one, degraded get)"
cargo build --release -p galloper-cli -p galloper-loadgen --bins
SERVE_TMP="$(mktemp -d)"
SERVE_LOG="$SERVE_TMP/serve.log"
GALLOPER_SCRAPE_MS=300 ./target/release/galloper serve --daemons 3 --root "$SERVE_TMP/data" \
  >"$SERVE_LOG" 2>"$SERVE_TMP/serve.err" &
SERVE_PID=$!
cleanup_serve() {
  kill "$SERVE_PID" 2>/dev/null || true
  awk '/^GALLOPER_DAEMON_PID /{print $3}' "$SERVE_LOG" 2>/dev/null \
    | xargs -r kill -9 2>/dev/null || true
  rm -rf "$SERVE_TMP" "$BENCH_TMP" ${BIG_DIR:+"$BIG_DIR"}
}
trap cleanup_serve EXIT
for _ in $(seq 1 100); do
  grep -q GALLOPER_GATEWAY_LISTENING "$SERVE_LOG" 2>/dev/null && break
  sleep 0.2
done
GATEWAY="$(awk '/^GALLOPER_GATEWAY_LISTENING /{print $2}' "$SERVE_LOG")"
[ -n "$GATEWAY" ] || { echo "serve smoke: gateway never came up"; cat "$SERVE_TMP/serve.err"; exit 1; }
head -c 300000 /dev/urandom >"$SERVE_TMP/obj.bin"
./target/release/galloper net-put "$GATEWAY" smoke "$SERVE_TMP/obj.bin"
./target/release/galloper net-get "$GATEWAY" smoke "$SERVE_TMP/back.bin"
cmp "$SERVE_TMP/obj.bin" "$SERVE_TMP/back.bin"

# Chunked-transfer smoke: a ragged ~160 MiB object — far past the old
# one-frame 64 MiB cap — must stream through the same live cluster
# byte-exact. Scratch files live on tmpfs when available so disk
# throughput can't dominate the gate.
echo "==> chunked transfer smoke (160 MiB object through the gateway)"
BIG_DIR="$SERVE_TMP"
if [ -d /dev/shm ] && [ -w /dev/shm ]; then
  BIG_DIR="$(mktemp -d /dev/shm/galloper-big.XXXXXX)"
fi
head -c $((160 * 1024 * 1024 + 12345)) /dev/urandom >"$BIG_DIR/big.bin"
./target/release/galloper net-put "$GATEWAY" bigobj "$BIG_DIR/big.bin"
./target/release/galloper net-get "$GATEWAY" bigobj "$BIG_DIR/big-back.bin"
cmp "$BIG_DIR/big.bin" "$BIG_DIR/big-back.bin"
rm -f "$BIG_DIR/big-back.bin"

# Short loadgen pass against the healthy cluster (writes need every
# daemon; only reads survive a loss), gated like every other bench:
# byte_errors is a lower-is-better gate in bench-diff.
echo "==> loadgen gate (BENCH_serve.json vs baseline)"
GALLOPER_JSON_OUT="$SERVE_TMP" ./target/release/galloper-loadgen \
  --gateway "$GATEWAY" --clients 64 --rate 400 --seconds 3 \
  --objects 8 --object-bytes 16384 >/dev/null
GALLOPER_BENCH_BASELINE=results/baselines \
  ./target/release/galloper bench-diff "$SERVE_TMP/BENCH_serve.json" --check

# Observability gate, healthy side: the gateway's scraper must see all
# three daemons and the merged view must parse as a healthy cluster
# (--require-healthy exits nonzero on unreachable daemons or scrape
# errors).
echo "==> stat gate (scraper sees 3/3 daemons, then 2/3 after kill)"
./target/release/galloper stat "$GATEWAY" --json --require-healthy \
  | grep -q '"daemons_reachable":3'

# Machine loss mid-service: the degraded read must stay byte-exact —
# on the whole-frame path and on the chunked path alike.
KILLED="$(awk '/^GALLOPER_DAEMON_PID 1 /{print $3}' "$SERVE_LOG")"
kill -9 "$KILLED"
./target/release/galloper net-get "$GATEWAY" smoke "$SERVE_TMP/degraded.bin"
cmp "$SERVE_TMP/obj.bin" "$SERVE_TMP/degraded.bin"
./target/release/galloper net-get "$GATEWAY" bigobj "$BIG_DIR/big-degraded.bin"
cmp "$BIG_DIR/big.bin" "$BIG_DIR/big-degraded.bin"
rm -f "$BIG_DIR/big.bin" "$BIG_DIR/big-degraded.bin"

# Observability gate, degraded side: within a few scrape intervals the
# cluster view must report the killed daemon unreachable (2/3) without
# the dead node poisoning the merge.
STAT_DEGRADED=0
for _ in $(seq 1 50); do
  if ./target/release/galloper stat "$GATEWAY" --json 2>/dev/null \
    | grep -q '"daemons_reachable":2'; then
    STAT_DEGRADED=1
    break
  fi
  sleep 0.2
done
[ "$STAT_DEGRADED" = 1 ] || { echo "stat gate: scraper never reported the killed daemon"; exit 1; }
echo "serve smoke: byte-exact, degraded read survived daemon kill, stat saw the loss"
kill "$SERVE_PID" 2>/dev/null || true

echo "==> miri: gf256 kernel differential suite"
if cargo +nightly miri --version >/dev/null 2>&1; then
  cargo +nightly miri test -p galloper-gf --test kernel_differential
else
  echo "miri: not installed; skipping (install: rustup +nightly component add miri)"
fi

echo "ci: all green"
