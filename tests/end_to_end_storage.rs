//! End-to-end storage pipeline: encode with each code family, place the
//! blocks on a simulated cluster, kill a server, execute the repair plan,
//! and verify that the bytes the plan's arithmetic produces are identical
//! to the lost block — i.e. the simulator's I/O accounting and the coding
//! layer agree about what a repair is.

use galloper_suite::codes::{Carousel, ErasureCode, Galloper, Pyramid, ReedSolomon};
use galloper_suite::sim::{simulate_server_failure, Cluster, Placement, ServerSpec};

fn sample(len: usize) -> Vec<u8> {
    (0..len)
        .map(|i| (i.wrapping_mul(131) % 251) as u8)
        .collect()
}

fn check_code(name: &str, code: &dyn ErasureCode, block_mb: f64) {
    let n = code.num_blocks();
    let data = sample(code.message_len());
    let blocks = code.encode(&data).expect("encode");

    let cluster = Cluster::homogeneous(n + 2, ServerSpec::default());
    let placement = Placement::identity(n);
    let plans: Vec<_> = (0..n).map(|b| code.repair_plan(b).unwrap()).collect();

    for failed in 0..n {
        // Simulated recovery (timing + I/O accounting).
        let report = simulate_server_failure(&cluster, &placement, &plans, block_mb, failed, n + 1);
        assert_eq!(report.lost_blocks, vec![failed], "{name}");
        assert!(report.completion_secs > 0.0, "{name}");
        let expected_io = plans[failed].fan_in() as f64 * block_mb;
        assert!(
            (report.disk_read_mb - expected_io).abs() < 1e-9,
            "{name}: simulated I/O {} != plan I/O {}",
            report.disk_read_mb,
            expected_io
        );

        // Real arithmetic: the plan's sources reproduce the lost bytes.
        let sources: Vec<(usize, &[u8])> = plans[failed]
            .sources()
            .iter()
            .map(|&s| (s, blocks[s].as_slice()))
            .collect();
        let rebuilt = code.reconstruct(failed, &sources).expect("reconstruct");
        assert_eq!(rebuilt, blocks[failed], "{name}: block {failed} mismatch");
    }
}

#[test]
fn every_code_survives_single_server_loss() {
    let rs = ReedSolomon::new(4, 2, 4096).unwrap();
    check_code("reed-solomon", &rs, 45.0);
    let pyramid = Pyramid::new(4, 2, 1, 4096).unwrap();
    check_code("pyramid", &pyramid, 45.0);
    let galloper = Galloper::uniform(4, 2, 1, 1024).unwrap();
    check_code("galloper", &galloper, 45.0);
    let carousel = Carousel::new(4, 2, 1024).unwrap();
    check_code("carousel", &carousel, 45.0);
}

#[test]
fn locally_repairable_codes_recover_faster_and_cheaper() {
    // The Fig. 8 claim end to end: for a lost data block, Pyramid and
    // Galloper beat RS and Carousel in both time and bytes.
    let block_mb = 45.0;
    let cluster = Cluster::homogeneous(10, ServerSpec::default());

    let measure = |code: &dyn ErasureCode| {
        let n = code.num_blocks();
        let placement = Placement::identity(n);
        let plans: Vec<_> = (0..n).map(|b| code.repair_plan(b).unwrap()).collect();
        let report = simulate_server_failure(&cluster, &placement, &plans, block_mb, 0, n + 1);
        (report.completion_secs, report.disk_read_mb)
    };

    let rs = measure(&ReedSolomon::new(4, 2, 64).unwrap());
    let car = measure(&Carousel::new(4, 2, 64).unwrap());
    let pyr = measure(&Pyramid::new(4, 2, 1, 64).unwrap());
    let gal = measure(&Galloper::uniform(4, 2, 1, 64).unwrap());

    assert_eq!(rs.1, 180.0, "RS reads 4 x 45 MB");
    assert_eq!(car.1, 180.0, "Carousel repairs like RS");
    assert_eq!(pyr.1, 90.0, "Pyramid reads its group");
    assert_eq!(gal.1, 90.0, "Galloper reads its group");
    assert!(gal.0 < rs.0, "Galloper repair is faster than RS");
    assert!(
        (gal.0 - pyr.0).abs() < 1e-9,
        "Galloper repair time equals Pyramid"
    );
}

#[test]
fn fsck_repairs_an_encoded_directory_end_to_end() {
    // The operator's recovery path: encode to disk, suffer a mix of
    // missing and truncated block files, run `galloper fsck --repair`,
    // and get back a byte-identical, fully healthy directory.
    use galloper_cli::{decode_file, encode_file, fsck, CodeSpec};
    use std::fs;

    let dir = std::env::temp_dir().join(format!("galloper-e2e-fsck-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    let input = dir.join("input.bin");
    let data = sample(120_000);
    fs::write(&input, &data).unwrap();

    let out = dir.join("encoded");
    encode_file(&input, &out, &CodeSpec::galloper(4, 2, 1, 2048)).unwrap();

    // Damage within tolerance: one block gone, another truncated.
    fs::remove_file(out.join("block_0.bin")).unwrap();
    fs::write(out.join("block_5.bin"), b"torn write").unwrap();

    let (report, healthy) = fsck(&out, false).unwrap();
    assert!(!healthy, "report-only fsck must flag the damage: {report}");

    let (report, healthy) = fsck(&out, true).unwrap();
    assert!(healthy, "{report}");
    assert!(report.contains("fully healthy"), "{report}");

    let restored = dir.join("restored.bin");
    decode_file(&out, &restored).unwrap();
    assert_eq!(fs::read(&restored).unwrap(), data);
    // A second pass finds nothing to do.
    let (report, healthy) = fsck(&out, true).unwrap();
    assert!(healthy);
    assert!(!report.contains("rebuilt"), "{report}");
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn multi_failure_recovery_via_decode() {
    // Two servers die: beyond single-block repair, so recover through a
    // full decode and re-encode, then verify every rebuilt block.
    let code = Galloper::uniform(4, 2, 1, 2048).unwrap();
    let data = sample(code.message_len());
    let blocks = code.encode(&data).unwrap();

    for (a, b) in [(0usize, 3usize), (2, 6), (1, 5)] {
        let avail: Vec<Option<&[u8]>> = (0..7)
            .map(|i| (i != a && i != b).then(|| blocks[i].as_slice()))
            .collect();
        let recovered = code.decode(&avail).expect("decode under double failure");
        assert_eq!(recovered, data);
        let reencoded = code.encode(&recovered).unwrap();
        assert_eq!(reencoded[a], blocks[a]);
        assert_eq!(reencoded[b], blocks[b]);
    }
}
