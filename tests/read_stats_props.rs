//! Property tests for the degraded-read accounting invariant: whenever a
//! range read succeeds, `bytes_read` is exactly `stripes_read` stripes'
//! worth — no matter the code family, which blocks are erased, or where
//! the range falls. This pins the contract the DFS repair-bill metrics
//! and the paper's disk-I/O comparisons are built on.

use galloper_suite::codes::{Carousel, ErasureCode, Galloper, LinearCode, Pyramid, ReedSolomon};
use galloper_testkit::{run_cases, TestRng};

fn families() -> Vec<(&'static str, LinearCode)> {
    vec![
        (
            "rs",
            ReedSolomon::new(4, 2, 256).unwrap().as_linear().clone(),
        ),
        (
            "pyramid",
            Pyramid::new(4, 2, 1, 256).unwrap().as_linear().clone(),
        ),
        (
            "carousel",
            Carousel::new(4, 2, 128).unwrap().as_linear().clone(),
        ),
        (
            "galloper",
            Galloper::uniform(4, 2, 1, 128).unwrap().as_linear().clone(),
        ),
    ]
}

#[test]
fn bytes_read_is_stripes_read_times_stripe_size_everywhere() {
    let families = families();
    run_cases(60, 0x5EED_57A7, |rng| {
        for (name, code) in &families {
            let n = code.num_blocks();
            let data: Vec<u8> = rng.bytes(code.message_len());
            let blocks = code.encode(&data).unwrap();

            // Anything from a healthy read to more erasures than the
            // code tolerates — undecodable cases must error, not lie.
            let take = rng.usize_in(0, n + 1);
            let erased = rng.sample_indices(n, take);
            let avail: Vec<Option<&[u8]>> = blocks
                .iter()
                .enumerate()
                .map(|(i, b)| (!erased.contains(&i)).then_some(b.as_slice()))
                .collect();

            let offset = rng.usize_in(0, code.message_len());
            let len = rng.usize_in(0, code.message_len() - offset + 1);
            match code.read_range(offset, len, &avail) {
                Ok((bytes, stats)) => {
                    assert_eq!(
                        bytes,
                        &data[offset..offset + len],
                        "{name} erased={erased:?} {offset}+{len}: wrong bytes"
                    );
                    assert_eq!(
                        stats.bytes_read,
                        stats.stripes_read * code.stripe_size(),
                        "{name} erased={erased:?} {offset}+{len}: \
                         accounting out of step (degraded={} full_decode={})",
                        stats.degraded,
                        stats.full_decode
                    );
                    assert!(
                        stats.bytes_read >= len,
                        "{name}: read fewer bytes than returned"
                    );
                    if erased.is_empty() {
                        assert!(!stats.degraded, "{name}: healthy read marked degraded");
                        assert!(!stats.full_decode);
                    }
                }
                Err(_) => {
                    // Only acceptable when blocks actually are missing.
                    assert!(
                        !erased.is_empty(),
                        "{name}: healthy read must not fail ({offset}+{len})"
                    );
                }
            }
        }
    });
}

#[test]
fn corruption_detected_by_crc_roundtrips_through_repair() {
    // A flipped byte inside a stored block must never reach a reader:
    // the DFS CRC check reclassifies the block as an erasure and the
    // codes decode around it, for every family.
    use galloper_suite::dfs::Dfs;
    let mut rng = TestRng::new(0xC0DE_C0DE);
    let data = rng.bytes(17_000);

    fn check<C: galloper_suite::dfs::ErasureCode>(code: C, data: &[u8]) {
        let mut dfs = Dfs::new(10, code);
        dfs.put("obj", data).unwrap();
        for group in 0..2 {
            assert!(dfs.corrupt_stored("obj", group, group + 1));
        }
        assert_eq!(dfs.get("obj").unwrap(), data, "corruption leaked");
        dfs.scan_endangered();
        dfs.drain_repairs(usize::MAX).unwrap();
        assert!(dfs.fsck().all_healthy());
        assert_eq!(dfs.get("obj").unwrap(), data);
    }

    check(ReedSolomon::new(4, 2, 256).unwrap(), &data);
    check(Pyramid::new(4, 2, 1, 256).unwrap(), &data);
    check(Carousel::new(4, 2, 128).unwrap(), &data);
    check(Galloper::uniform(4, 2, 1, 128).unwrap(), &data);
}
