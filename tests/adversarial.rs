//! Adversarial and boundary tests across the whole stack: malformed
//! inputs must error (never corrupt), and the structural guarantees must
//! hold at the parameter extremes.

use galloper_suite::codes::{
    CodeError, ErasureCode, Galloper, GalloperParams, Pyramid, ReedSolomon, StripeAllocation,
};

fn sample(len: usize) -> Vec<u8> {
    (0..len)
        .map(|i| (i.wrapping_mul(173) % 251) as u8)
        .collect()
}

#[test]
fn malformed_inputs_error_cleanly() {
    let code = Galloper::uniform(4, 2, 1, 64).unwrap();
    let data = sample(code.message_len());
    let blocks = code.encode(&data).unwrap();

    // Wrong message length.
    assert!(matches!(
        code.encode(&data[1..]),
        Err(CodeError::InvalidDataLength { .. })
    ));

    // Wrong arity to decode.
    let short: Vec<Option<&[u8]>> = blocks.iter().take(5).map(|b| Some(b.as_slice())).collect();
    assert!(matches!(
        code.decode(&short),
        Err(CodeError::WrongBlockCount { .. })
    ));

    // A block of the wrong size.
    let mut avail: Vec<Option<&[u8]>> = blocks.iter().map(|b| Some(b.as_slice())).collect();
    let truncated = &blocks[0][..blocks[0].len() - 1];
    avail[0] = Some(truncated);
    assert!(matches!(
        code.decode(&avail),
        Err(CodeError::BlockSizeMismatch)
    ));

    // Reconstruction with sources in the wrong order.
    let plan = code.repair_plan(0).unwrap();
    let mut sources: Vec<(usize, &[u8])> = plan
        .sources()
        .iter()
        .map(|&s| (s, blocks[s].as_slice()))
        .collect();
    sources.reverse();
    assert!(matches!(
        code.reconstruct(0, &sources),
        Err(CodeError::WrongSources { .. })
    ));

    // Out-of-range block index.
    assert!(matches!(
        code.repair_plan(7),
        Err(CodeError::BlockIndexOutOfRange { .. })
    ));
}

#[test]
fn extreme_parameters_still_work() {
    // Smallest possible Galloper: k = 1 (one group of one block).
    let code = Galloper::uniform(1, 1, 1, 8).unwrap();
    let data = sample(code.message_len());
    let blocks = code.encode(&data).unwrap();
    let avail: Vec<Option<&[u8]>> = blocks.iter().map(|b| Some(b.as_slice())).collect();
    assert_eq!(code.decode(&avail).unwrap(), data);

    // Wide code: k = 20, l = 5, g = 3.
    let code = Galloper::uniform(20, 5, 3, 4).unwrap();
    let data = sample(code.message_len());
    let blocks = code.encode(&data).unwrap();
    // Erase g + 1 = 4 blocks spread over groups and globals.
    let erased = [0usize, 7, 14, 27];
    let avail: Vec<Option<&[u8]>> = (0..code.num_blocks())
        .map(|b| (!erased.contains(&b)).then(|| blocks[b].as_slice()))
        .collect();
    assert_eq!(code.decode(&avail).unwrap(), data);

    // Locality still holds at width.
    assert_eq!(code.repair_plan(0).unwrap().fan_in(), 4);
}

#[test]
fn single_byte_stripes() {
    // stripe_size = 1: the smallest granularity everywhere.
    let code = Galloper::uniform(4, 2, 1, 1).unwrap();
    assert_eq!(code.message_len(), 28);
    let data = sample(28);
    let blocks = code.encode(&data).unwrap();
    assert!(blocks.iter().all(|b| b.len() == 7));
    let refs: Vec<&[u8]> = blocks.iter().map(Vec::as_slice).collect();
    assert_eq!(code.layout().extract_data(&refs), data);
}

#[test]
fn zero_weight_blocks_are_legal() {
    // A server so slow the LP gives it (almost) nothing: force a zero
    // count via explicit weights and confirm everything still works.
    let params = GalloperParams::new(4, 0, 2).unwrap();
    let w = [1.0, 1.0, 1.0, 0.75, 0.25, 0.0];
    let alloc = StripeAllocation::from_weights(params, &w, 4).unwrap();
    assert_eq!(alloc.counts().iter().sum::<usize>(), 16);
    let code = Galloper::with_allocation(alloc, 16).unwrap();
    let layout = code.layout();
    assert_eq!(layout.data_stripes(5), 0, "block 5 holds no data");
    let data = sample(code.message_len());
    let blocks = code.encode(&data).unwrap();
    // Still MDS: any 4 of 6 blocks decode.
    let avail: Vec<Option<&[u8]>> = (0..6)
        .map(|b| (b != 0 && b != 5).then(|| blocks[b].as_slice()))
        .collect();
    assert_eq!(code.decode(&avail).unwrap(), data);
}

#[test]
fn decode_is_resilient_to_which_blocks_vanish_mid_repair() {
    // Lose one block, rebuild it, lose another, rebuild, repeat across
    // the whole code: a rolling-failure scenario.
    let code = Pyramid::new(6, 2, 2, 32).unwrap();
    let data = sample(code.message_len());
    let mut blocks = code.encode(&data).unwrap();
    for round in 0..code.num_blocks() {
        let lost = (round * 3 + 1) % code.num_blocks();
        let saved = blocks[lost].clone();
        blocks[lost].clear();
        let plan = code.repair_plan(lost).unwrap();
        let sources: Vec<(usize, &[u8])> = plan
            .sources()
            .iter()
            .map(|&s| (s, blocks[s].as_slice()))
            .collect();
        let rebuilt = code.reconstruct(lost, &sources).unwrap();
        assert_eq!(rebuilt, saved, "round {round} block {lost}");
        blocks[lost] = rebuilt;
    }
}

#[test]
fn cross_family_byte_compatibility_of_data_extents() {
    // The first k blocks of RS and Pyramid hold identical bytes (both are
    // systematic over the same message), so storage systems can migrate
    // between them without re-writing data blocks.
    let rs = ReedSolomon::new(4, 2, 128).unwrap();
    let pyr = Pyramid::new(4, 2, 1, 128).unwrap();
    let data = sample(rs.message_len());
    let rs_blocks = rs.encode(&data).unwrap();
    let pyr_blocks = pyr.encode(&data).unwrap();
    // Pyramid's data blocks sit at grouped positions.
    let pyr_data_pos = [0usize, 1, 3, 4];
    for (c, &p) in pyr_data_pos.iter().enumerate() {
        assert_eq!(rs_blocks[c], pyr_blocks[p], "data block {c}");
    }
}

#[test]
fn reliability_is_preserved_by_symbol_remapping() {
    // Symbol remapping changes where data lives but not the code space,
    // so the loss probability under independent server failures must be
    // bit-identical between the remapped code and its source code.
    use galloper_erasure::reliability::{
        data_loss_probability, guaranteed_tolerance, tolerance_profile,
    };
    use galloper_suite::codes::Carousel;

    let rs = ReedSolomon::new(4, 2, 16).unwrap();
    let carousel = Carousel::new(4, 2, 4).unwrap();
    let pyramid = Pyramid::new(4, 2, 1, 16).unwrap();
    let galloper = Galloper::uniform(4, 2, 1, 4).unwrap();

    for p in [0.01f64, 0.05, 0.2] {
        assert_eq!(
            data_loss_probability(&rs, p),
            data_loss_probability(&carousel, p),
            "Carousel must inherit RS reliability exactly (p={p})"
        );
        assert_eq!(
            data_loss_probability(&pyramid, p),
            data_loss_probability(&galloper, p),
            "Galloper must inherit Pyramid reliability exactly (p={p})"
        );
    }
    assert_eq!(guaranteed_tolerance(&rs), 2);
    assert_eq!(guaranteed_tolerance(&galloper), 2);
    assert_eq!(tolerance_profile(&pyramid), tolerance_profile(&galloper));

    // The extra local parities buy strictly better reliability than RS at
    // the same tolerance guarantee.
    assert!(data_loss_probability(&galloper, 0.05) < data_loss_probability(&rs, 0.05));
}
