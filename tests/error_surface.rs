//! The unified error surface: conversions from every layer, intact
//! `source()` chains, and wire-stable `kind()` classification that
//! round-trips through the protocol's u16 codes.

use std::error::Error as StdError;

use galloper_suite::codes::{build_code, CodeSpec};
use galloper_suite::dfs::{Dfs, DfsError, StoreError};
use galloper_suite::net::{ErrorKind, ProtocolError, Response};
use galloper_suite::Error;

fn demo_dfs() -> Dfs<galloper_suite::codes::BoxedCode> {
    Dfs::new(4, build_code(&CodeSpec::rs(2, 1, 512)).expect("code"))
}

/// A helper that exercises `?`-conversion from each layer.
fn fails_with_dfs() -> Result<(), Error> {
    let dfs = demo_dfs();
    dfs.get("missing")?;
    Ok(())
}

fn fails_with_protocol() -> Result<(), Error> {
    Response::decode(&[0x7F, 1, 2, 3])?;
    Ok(())
}

fn fails_with_build() -> Result<(), Error> {
    build_code(&CodeSpec {
        family: "no-such-family".into(),
        k: 2,
        l: 0,
        g: 1,
        resolution: 1,
        stripe_size: 512,
        counts: Vec::new(),
    })?;
    Ok(())
}

#[test]
fn question_mark_converts_every_layer() {
    assert!(matches!(fails_with_dfs(), Err(Error::Dfs(_))));
    assert!(matches!(fails_with_protocol(), Err(Error::Protocol(_))));
    assert!(matches!(fails_with_build(), Err(Error::Build(_))));
}

#[test]
fn source_chain_reaches_the_original_error() {
    let err = fails_with_dfs().unwrap_err();
    let source = err.source().expect("wrapped errors expose a source");
    let dfs_err = source
        .downcast_ref::<DfsError>()
        .expect("source is the original DfsError");
    assert!(matches!(dfs_err, DfsError::NotFound(_)));
    // Display includes the layer prefix and the underlying message.
    let rendered = err.to_string();
    assert!(rendered.starts_with("dfs: "), "got {rendered:?}");
    assert!(rendered.contains("missing"), "got {rendered:?}");
}

#[test]
fn kinds_are_wire_stable() {
    // Local failures classify exactly as their remote twins would.
    assert_eq!(fails_with_dfs().unwrap_err().kind(), ErrorKind::NotFound);
    assert_eq!(
        fails_with_protocol().unwrap_err().kind(),
        ErrorKind::Protocol
    );
    assert_eq!(fails_with_build().unwrap_err().kind(), ErrorKind::Code);
    assert_eq!(
        Error::from(StoreError::Unreachable("127.0.0.1:1".into())).kind(),
        ErrorKind::Store
    );
    assert_eq!(
        Error::from(std::io::Error::other("disk on fire")).kind(),
        ErrorKind::Io
    );
    // Protocol transport failures classify as I/O, not as protocol
    // violations — the peer did nothing wrong.
    assert_eq!(
        Error::from(ProtocolError::Io(std::io::Error::other("reset"))).kind(),
        ErrorKind::Io
    );
}

#[test]
fn kind_codes_roundtrip_through_the_wire() {
    for err in [
        fails_with_dfs().unwrap_err(),
        fails_with_protocol().unwrap_err(),
        fails_with_build().unwrap_err(),
    ] {
        let kind = err.kind();
        assert_eq!(ErrorKind::from_code(kind.code()), kind);
    }
}

#[test]
fn retryability_follows_the_wire_classification() {
    // NotFound is terminal; a transient outage beyond tolerance is
    // worth retrying. The unified surface agrees with the protocol.
    let mut dfs = demo_dfs();
    dfs.put("obj", &[7u8; 2048]).expect("put");
    for server in 0..4 {
        dfs.begin_outage(server, 10);
    }
    let err = Error::from(dfs.get("obj").unwrap_err());
    assert!(
        err.kind().is_retryable(),
        "outage beyond tolerance mid-read should classify retryable, got {:?}",
        err.kind()
    );
    assert!(!fails_with_dfs().unwrap_err().kind().is_retryable());
}
