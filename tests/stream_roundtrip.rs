//! Property-style round-trips of the streaming codec drivers against the
//! one-shot [`ObjectCodec`]: for every code family, every ragged object
//! length (including the empty object), every push-chunk size, and both
//! serial and concurrent encoders, the streamed groups must be
//! byte-identical to the whole-object path and decode back to the exact
//! original bytes — while the buffer pools stay bounded by the number of
//! groups in flight.

use galloper_suite::codes::{build_code, BoxedCode, CodeSpec, ErasureCode, ObjectCodec};
use galloper_suite::stream::{AlignedBuf, StripeDecoder, StripeEncoder, StripeReconstructor};

/// Deterministic non-trivial payload.
fn sample(len: usize, seed: u8) -> Vec<u8> {
    (0..len)
        .map(|i| (i.wrapping_mul(131).wrapping_add(seed as usize * 17) % 251) as u8)
        .collect()
}

/// Every family at small stripe sizes, as the specs the shared builder
/// consumes — exactly what the CLI would rebuild from a manifest.
fn families() -> Vec<(&'static str, CodeSpec)> {
    vec![
        ("rs", CodeSpec::rs(4, 2, 64)),
        ("pyramid", CodeSpec::pyramid(4, 2, 1, 64)),
        ("carousel", CodeSpec::carousel(4, 2, 16)),
        ("galloper", CodeSpec::galloper(4, 2, 1, 16)),
        ("galloper-asl", CodeSpec::galloper_asl(4, 2, 2, 16)),
    ]
}

/// Object lengths exercising the empty object, sub-group tails, exact
/// multiples, and ragged multi-group objects.
fn object_lens(msg: usize) -> Vec<usize> {
    vec![0, 1, msg / 2, msg - 1, msg, msg + 1, 2 * msg, 3 * msg - 7]
}

/// Streams `data` through a [`StripeEncoder`] in `chunk`-byte pushes and
/// returns the emitted groups plus the encoder's pool-allocation count.
fn stream_encode(
    code: &BoxedCode,
    data: &[u8],
    chunk: usize,
    concurrency: usize,
) -> (
    galloper_suite::codes::ObjectManifest,
    Vec<Vec<Vec<u8>>>,
    u64,
) {
    let mut groups: Vec<Vec<Vec<u8>>> = Vec::new();
    let sink = |g: usize, blocks: &[AlignedBuf]| -> Result<(), core::convert::Infallible> {
        assert_eq!(g, groups.len(), "groups must arrive in order");
        groups.push(blocks.iter().map(|b| b.to_vec()).collect());
        Ok(())
    };
    let mut encoder = StripeEncoder::new(code, sink).with_concurrency(concurrency);
    for piece in data.chunks(chunk.max(1)) {
        encoder.push(piece).unwrap();
    }
    let allocated = encoder.pool().allocated();
    // `_` drops the returned sink here, releasing its borrow of `groups`.
    let (manifest, _) = encoder.finish().unwrap();
    (manifest, groups, allocated)
}

#[test]
fn streaming_encode_matches_oneshot_for_every_family() {
    for (name, spec) in families() {
        let code = build_code(&spec).unwrap();
        let msg = code.message_len();
        // The builder is deterministic, so a second build is the same code.
        let codec = ObjectCodec::new(build_code(&spec).unwrap());
        for len in object_lens(msg) {
            let data = sample(len, 3);
            let oneshot = codec.encode_object(&data).unwrap();
            for concurrency in [1, 3] {
                for chunk in [7, msg, usize::MAX] {
                    let (manifest, groups, _) =
                        stream_encode(&code, &data, chunk.min(len.max(1)), concurrency);
                    assert_eq!(
                        manifest, oneshot.manifest,
                        "{name}: manifest len={len} chunk={chunk} conc={concurrency}"
                    );
                    assert_eq!(
                        groups, oneshot.groups,
                        "{name}: groups len={len} chunk={chunk} conc={concurrency}"
                    );
                }
            }
        }
    }
}

#[test]
fn streaming_decode_recovers_exact_bytes_with_a_lost_block() {
    for (name, spec) in families() {
        let code = build_code(&spec).unwrap();
        let msg = code.message_len();
        let n = code.num_blocks();
        for len in object_lens(msg) {
            let data = sample(len, 5);
            let (manifest, groups, _) = stream_encode(&code, &data, 4096, 2);

            // Stream the groups back with data block 0 missing everywhere.
            let mut decoder = StripeDecoder::new(&code, manifest);
            let mut out = Vec::new();
            for blocks in &groups {
                let available: Vec<Option<&[u8]>> = (0..n)
                    .map(|b| (b != 0).then(|| blocks[b].as_slice()))
                    .collect();
                out.extend_from_slice(&decoder.next_group(&available).unwrap());
            }
            let total = decoder.finish().unwrap();
            assert_eq!(total, len, "{name}: reported length for len={len}");
            assert_eq!(out, data, "{name}: decoded bytes for len={len}");
        }
    }
}

#[test]
fn streaming_reconstruct_rebuilds_every_block_groupwise() {
    for (name, spec) in families() {
        let code = build_code(&spec).unwrap();
        let msg = code.message_len();
        let data = sample(3 * msg - 7, 9);
        let (manifest, groups, _) = stream_encode(&code, &data, 4096, 1);

        for target in 0..code.num_blocks() {
            let mut rec = StripeReconstructor::new(&code, target, manifest.num_groups).unwrap();
            let src_ids: Vec<usize> = rec.plan().sources().to_vec();
            for blocks in &groups {
                let sources: Vec<(usize, &[u8])> =
                    src_ids.iter().map(|&s| (s, blocks[s].as_slice())).collect();
                let rebuilt = rec.next_group(&sources).unwrap();
                assert_eq!(rebuilt, blocks[target], "{name}: block {target}");
            }
            rec.finish().unwrap();
        }
    }
}

#[test]
fn encoder_pools_stay_bounded_by_groups_in_flight() {
    for (name, spec) in families() {
        let code = build_code(&spec).unwrap();
        let msg = code.message_len();
        let n = code.num_blocks() as u64;
        // 20 groups through a serial and a 3-deep concurrent encoder.
        let data = sample(20 * msg, 11);
        for concurrency in [1u64, 3] {
            let (_, groups, allocated) = stream_encode(&code, &data, msg, concurrency as usize);
            assert_eq!(groups.len(), 20, "{name}");
            // The unified pool holds at most one batch of message buffers
            // (plus one pending stage) and one batch of block buffers —
            // never a number that grows with the 20 groups streamed.
            assert!(
                allocated <= concurrency + 1 + concurrency * n,
                "{name}: {allocated} pooled buffers at concurrency {concurrency}"
            );
        }
    }
}
