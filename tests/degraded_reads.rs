//! Cross-crate degraded-read tests: byte-range reads under failures for
//! every code family, with I/O-amplification assertions.

use galloper_suite::codes::{Carousel, ErasureCode, Galloper, Pyramid, ReedSolomon};

fn sample(len: usize) -> Vec<u8> {
    (0..len)
        .map(|i| (i.wrapping_mul(101) % 251) as u8)
        .collect()
}

#[test]
fn range_reads_roundtrip_for_all_codes_under_single_failure() {
    let rs = ReedSolomon::new(4, 2, 1024).unwrap();
    let pyr = Pyramid::new(4, 2, 1, 1024).unwrap();
    let car = Carousel::new(4, 2, 256).unwrap();
    let gal = Galloper::uniform(4, 2, 1, 256).unwrap();
    let codes: Vec<(&str, &galloper_suite::codes::LinearCode, usize)> = vec![
        ("rs", rs.as_linear(), rs.num_blocks()),
        ("pyramid", pyr.as_linear(), pyr.num_blocks()),
        ("carousel", car.as_linear(), car.num_blocks()),
        ("galloper", gal.as_linear(), gal.num_blocks()),
    ];
    for (name, code, n) in codes {
        let data = sample(code.message_len());
        let blocks = code.encode(&data).unwrap();
        for failed in 0..n {
            let avail: Vec<Option<&[u8]>> = blocks
                .iter()
                .enumerate()
                .map(|(i, b)| (i != failed).then_some(b.as_slice()))
                .collect();
            // A handful of ranges including stripe-straddling ones.
            for (offset, len) in [
                (0usize, code.message_len()),
                (0, 1),
                (code.message_len() / 2 - 3, 7),
                (code.message_len() - 5, 5),
                (13, 2000.min(code.message_len() - 13)),
            ] {
                let (bytes, stats) = code
                    .read_range(offset, len, &avail)
                    .unwrap_or_else(|e| panic!("{name} failed={failed} {offset}+{len}: {e}"));
                assert_eq!(
                    bytes,
                    &data[offset..offset + len],
                    "{name} failed={failed} {offset}+{len}"
                );
                assert!(stats.bytes_read >= len || len == 0, "{name}");
            }
        }
    }
}

#[test]
fn galloper_degraded_reads_amplify_less_than_rs() {
    // Reading one stripe of a lost block: Galloper fetches its local
    // group's stripes (2), RS fetches k stripes' worth (4 sources).
    let gal = Galloper::uniform(4, 2, 1, 512).unwrap();
    let rs = ReedSolomon::new(4, 2, gal.block_len()).unwrap();

    let g_data = sample(gal.message_len());
    let g_blocks = gal.encode(&g_data).unwrap();
    let g_avail: Vec<Option<&[u8]>> = g_blocks
        .iter()
        .enumerate()
        .map(|(i, b)| (i != 0).then_some(b.as_slice()))
        .collect();
    // The first stripe of the message lives in block 0 (lost).
    let (_, g_stats) = gal.as_linear().read_range(0, 512, &g_avail).unwrap();

    let r_data = sample(rs.message_len());
    let r_blocks = rs.encode(&r_data).unwrap();
    let r_avail: Vec<Option<&[u8]>> = r_blocks
        .iter()
        .enumerate()
        .map(|(i, b)| (i != 0).then_some(b.as_slice()))
        .collect();
    let (_, r_stats) = rs.as_linear().read_range(0, 512, &r_avail).unwrap();

    assert!(g_stats.degraded && r_stats.degraded);
    assert!(
        g_stats.bytes_read < r_stats.bytes_read,
        "galloper {} bytes vs rs {} bytes",
        g_stats.bytes_read,
        r_stats.bytes_read
    );
}

#[test]
fn healthy_reads_have_no_amplification() {
    let gal = Galloper::uniform(4, 2, 1, 256).unwrap();
    let data = sample(gal.message_len());
    let blocks = gal.encode(&data).unwrap();
    let avail: Vec<Option<&[u8]>> = blocks.iter().map(|b| Some(b.as_slice())).collect();
    // A stripe-aligned read touches exactly len bytes.
    let (bytes, stats) = gal.as_linear().read_range(256, 512, &avail).unwrap();
    assert_eq!(bytes, &data[256..768]);
    assert_eq!(stats.bytes_read, 512);
    assert!(!stats.degraded);
}
