//! The paper's central comparison, end to end: the same object encoded
//! with all four code families, run through the MapReduce simulator.
//! Galloper must be the only code that wins on *both* axes — repair I/O
//! (like Pyramid) and data parallelism (like Carousel).

use galloper_suite::codes::{Carousel, ErasureCode, Galloper, Pyramid, ReedSolomon};
use galloper_suite::sim::{
    layout_splits, simulate_job, Cluster, JobConfig, Placement, ServerSpec, Workload,
};

struct Axes {
    /// Disk MB read to repair one lost data block (per 45 MB block).
    repair_io_mb: f64,
    /// Number of map tasks the layout yields.
    map_tasks: usize,
    /// Simulated wordcount map-phase completion, seconds.
    map_secs: f64,
}

fn measure(code: &dyn ErasureCode, cluster: &Cluster) -> Axes {
    let n = code.num_blocks();
    let placement = Placement::identity(n);
    let splits = layout_splits(&code.layout(), &placement, 450.0, 451.0);
    let report = simulate_job(
        cluster,
        &splits,
        &JobConfig {
            workload: Workload::wordcount(),
            reducers: (n..n + 4).collect(),
        },
    );
    Axes {
        repair_io_mb: code.repair_plan(0).unwrap().fan_in() as f64 * 45.0,
        map_tasks: splits.len(),
        map_secs: report.map_secs,
    }
}

#[test]
fn galloper_wins_on_both_axes() {
    let cluster = Cluster::homogeneous(
        16,
        ServerSpec {
            cpu_mbps: 60.0,
            ..ServerSpec::default()
        },
    );

    let rs = measure(&ReedSolomon::new(4, 2, 64).unwrap(), &cluster);
    let carousel = measure(&Carousel::new(4, 2, 64).unwrap(), &cluster);
    let pyramid = measure(&Pyramid::new(4, 2, 1, 64).unwrap(), &cluster);
    let galloper = measure(&Galloper::uniform(4, 2, 1, 64).unwrap(), &cluster);

    // Repair axis (Fig. 1 / Fig. 8): locally repairable codes read half.
    assert_eq!(rs.repair_io_mb, 180.0);
    assert_eq!(carousel.repair_io_mb, 180.0);
    assert_eq!(pyramid.repair_io_mb, 90.0);
    assert_eq!(galloper.repair_io_mb, 90.0);

    // Parallelism axis (Fig. 2): data-spread codes use every block.
    assert_eq!(rs.map_tasks, 4);
    assert_eq!(pyramid.map_tasks, 4);
    assert_eq!(carousel.map_tasks, 6);
    assert_eq!(galloper.map_tasks, 7);

    // And parallelism translates into completion time.
    assert!(galloper.map_secs < pyramid.map_secs);
    assert!(carousel.map_secs < rs.map_secs);

    // Galloper is the unique code on the Pareto frontier of both axes.
    for other in [&rs, &carousel, &pyramid] {
        assert!(
            galloper.repair_io_mb <= other.repair_io_mb
                && galloper.map_secs <= other.map_secs + 1e-9,
            "Galloper must dominate"
        );
    }
}

#[test]
fn weighted_galloper_absorbs_stragglers() {
    // Fig. 10's mechanism through the whole pipeline: throttle three
    // servers, rebuild the code with measured weights, and watch the map
    // phase shrink.
    let mut cluster = Cluster::homogeneous(
        16,
        ServerSpec {
            cpu_mbps: 60.0,
            ..ServerSpec::default()
        },
    );
    for s in [3, 4, 5] {
        cluster.spec_mut(s).cpu_factor = 0.4;
    }
    let placement = Placement::identity(7);

    let run = |code: &Galloper| {
        let splits = layout_splits(&code.layout(), &placement, 450.0, 451.0);
        simulate_job(
            &cluster,
            &splits,
            &JobConfig {
                workload: Workload::wordcount(),
                reducers: (8..12).collect(),
            },
        )
    };

    let uniform = Galloper::uniform(4, 2, 1, 64).unwrap();
    let perfs: Vec<f64> = (0..7)
        .map(|b| cluster.spec(placement.server_of(b)).effective_cpu_mbps())
        .collect();
    let weighted = Galloper::from_performances(4, 2, 1, &perfs, 35, 64).unwrap();

    let before = run(&uniform);
    let after = run(&weighted);
    assert!(
        after.map_secs < 0.8 * before.map_secs,
        "weighted placement must cut the map phase substantially: {} vs {}",
        after.map_secs,
        before.map_secs
    );

    // The weighted code still repairs locally and still decodes.
    for b in 0..7 {
        let expected = if b == 6 { 4 } else { 2 };
        assert_eq!(weighted.repair_plan(b).unwrap().fan_in(), expected);
    }
    let data: Vec<u8> = (0..weighted.message_len())
        .map(|i| (i % 249) as u8)
        .collect();
    let blocks = weighted.encode(&data).unwrap();
    let avail: Vec<Option<&[u8]>> = (0..7)
        .map(|i| (i != 0 && i != 4).then(|| blocks[i].as_slice()))
        .collect();
    assert_eq!(weighted.decode(&avail).unwrap(), data);
}

#[test]
fn extraction_feeds_the_same_bytes_a_job_would_read() {
    // The FileInputFormat contract: the bytes the layout exposes as
    // "original data" are exactly the encoded message, for all four
    // families.
    let codes: Vec<(&str, Box<dyn ErasureCode>)> = vec![
        ("rs", Box::new(ReedSolomon::new(4, 2, 512).unwrap())),
        ("pyramid", Box::new(Pyramid::new(4, 2, 1, 512).unwrap())),
        ("carousel", Box::new(Carousel::new(4, 2, 128).unwrap())),
        (
            "galloper",
            Box::new(Galloper::uniform(4, 2, 1, 128).unwrap()),
        ),
    ];
    for (name, code) in codes {
        let data: Vec<u8> = (0..code.message_len()).map(|i| (i % 239) as u8).collect();
        let blocks = code.encode(&data).unwrap();
        let refs: Vec<&[u8]> = blocks.iter().map(|b| b.as_slice()).collect();
        assert_eq!(code.layout().extract_data(&refs), data, "{name}");
    }
}

#[test]
fn parallelism_compounds_under_multitenant_contention() {
    // Beyond Fig. 9: submit a queue of jobs over the same coded data.
    // Pyramid's four map tasks pile onto four servers while Galloper's
    // seven spread wider, so the aggregate latency gap grows with load.
    use galloper_suite::sim::{simulate_job_sequence, JobArrival};

    let cluster = Cluster::homogeneous(
        16,
        ServerSpec {
            cpu_mbps: 60.0,
            slots: 1,
            ..ServerSpec::default()
        },
    );
    let placement = Placement::identity(7);
    let queue = |layout: &galloper_suite::codes::DataLayout| -> f64 {
        let splits = layout_splits(layout, &placement, 450.0, 451.0);
        let arrivals: Vec<JobArrival> = (0..3)
            .map(|_| JobArrival {
                at_secs: 0.0,
                splits: splits.clone(),
                config: JobConfig {
                    workload: Workload::wordcount(),
                    reducers: (8..12).collect(),
                },
            })
            .collect();
        simulate_job_sequence(&cluster, &arrivals)
            .iter()
            .map(|r| r.job_secs)
            .sum()
    };

    let pyramid = Pyramid::new(4, 2, 1, 64).unwrap();
    let galloper = Galloper::uniform(4, 2, 1, 64).unwrap();
    let p_total = queue(&pyramid.layout());
    let g_total = queue(&galloper.layout());

    // Solo-job saving is bounded by 42.9%; under a 3-deep queue the
    // aggregate saving holds at least as strongly.
    let saving = 1.0 - g_total / p_total;
    assert!(
        saving > 0.3,
        "multitenant saving should stay large: {saving} ({g_total} vs {p_total})"
    );
}
