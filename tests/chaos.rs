//! The chaos soak: a seeded schedule of crashes, transient outage
//! windows, stragglers, and silent corruption against a live DFS for
//! every code family, with continuous reads. The contract under test is
//! the paper's durability story end to end — no fault mix inside the
//! code's tolerance envelope may lose a byte, corrupt a read, or leave
//! the background repair queue stuck.
//!
//! The schedule comes from [`FaultPlan::seeded`]; override the seed with
//! `GALLOPER_FAULT_SEED` to soak a different trajectory (CI pins one so
//! the run is reproducible).

use galloper_suite::codes::{Carousel, ErasureCode, Galloper, Pyramid, ReedSolomon};
use galloper_suite::dfs::{
    faults::{self, MAX_OUTAGE_TICKS},
    AsLinearCode, Dfs, DfsError, Fault, FaultPlan, FaultPlanConfig,
};
use galloper_testkit::TestRng;

const DEFAULT_SEED: u64 = 0xD15A_57E4;
const HORIZON: u64 = 120;

fn soak<C>(family: &str, code: C, num_servers: usize, tolerance: usize)
where
    C: ErasureCode + AsLinearCode,
{
    let n_blocks = code.num_blocks();
    let stripe_size = code.as_linear_code().stripe_size();
    let mut dfs = Dfs::new(num_servers, code);
    // Enough headroom to wait out chained outage windows near the end of
    // the schedule (1+2+...+128 ticks ≫ the widest possible chain).
    dfs.set_retry_limit(8);

    let seed = faults::seed_from_env(DEFAULT_SEED);
    let mut rng = TestRng::new(seed ^ 0x0BF5_CA7E);
    let files: Vec<(String, Vec<u8>)> = [21_000, 7_777, 1]
        .iter()
        .enumerate()
        .map(|(i, &len)| (format!("{family}-{i}"), rng.bytes(len)))
        .collect();
    for (name, data) in &files {
        dfs.put(name, data).unwrap();
    }

    let plan = FaultPlan::seeded(
        seed,
        &FaultPlanConfig {
            num_servers,
            horizon: HORIZON,
            tolerance,
            // Leave `tolerance + 1` servers of slack for concurrently
            // unavailable ones, so replacement placement never starves.
            max_crashes: num_servers - n_blocks - tolerance - 2,
        },
    );
    let injected_corruptions = plan
        .events()
        .iter()
        .filter(|e| matches!(e.fault, Fault::Corrupt { .. }))
        .count();
    assert!(
        injected_corruptions >= 1,
        "{family}: the soak must exercise corruption"
    );
    dfs.schedule(&plan);

    let end = plan.horizon() + MAX_OUTAGE_TICKS + 1;
    for t in 1..=end {
        // Retry backoff may already have pushed the clock past `t`.
        if t > dfs.clock() {
            dfs.advance_to(t);
        }
        // The background repair pass runs every tick.
        dfs.scan_endangered();
        let report = dfs.drain_repairs(usize::MAX).unwrap();
        assert_eq!(
            report.unrecoverable, 0,
            "{family} t={t}: repair declared data loss"
        );
        assert_eq!(report.summary.unrecoverable_groups, 0, "{family} t={t}");

        if t % 6 != 0 {
            continue;
        }
        // Foreground traffic: whole-object and random range reads must
        // stay byte-exact through every fault the plan throws.
        for (name, data) in &files {
            let (bytes, _attempts) = dfs
                .get_with_retry(name)
                .unwrap_or_else(|e| panic!("{family} t={t} {name}: {e}"));
            assert_eq!(&bytes, data, "{family} t={t} {name}: get corrupted");
        }
        let (name, data) = &files[rng.usize_in(0, files.len())];
        let offset = rng.usize_in(0, data.len());
        let len = rng.usize_in(0, data.len() - offset + 1);
        match dfs.read_range_stats(name, offset, len) {
            Ok((bytes, stats)) => {
                assert_eq!(
                    bytes,
                    &data[offset..offset + len],
                    "{family} t={t} {name} {offset}+{len}"
                );
                assert_eq!(
                    stats.bytes_read,
                    stats.stripes_read * stripe_size,
                    "{family} t={t}: accounting out of step"
                );
            }
            // An outage window wider than the code's tolerance is
            // legitimately unreadable *right now* — but only then.
            Err(DfsError::Unavailable { .. }) => {
                assert!(dfs.outage_count() > 0, "{family} t={t}: spurious outage");
            }
            Err(e) => panic!("{family} t={t} {name} {offset}+{len}: {e}"),
        }
    }

    // Quiesce: every window has expired; the queue must drain dry.
    dfs.advance_to(end + 1);
    let mut rounds = 0;
    loop {
        let newly = dfs.scan_endangered();
        let report = dfs.drain_repairs(usize::MAX).unwrap();
        assert_eq!(report.unrecoverable, 0, "{family}: data loss at quiesce");
        if newly == 0 && dfs.repair_queue_depth() == 0 {
            break;
        }
        rounds += 1;
        assert!(rounds < 32, "{family}: repair queue failed to drain");
    }

    let report = dfs.fsck();
    assert!(
        report.data_loss().is_empty(),
        "{family}: files lost after the soak"
    );
    assert!(
        report.all_healthy(),
        "{family}: self-healing left degraded groups behind"
    );
    for (name, data) in &files {
        assert_eq!(&dfs.get(name).unwrap(), data, "{family} {name}: final get");
        assert_eq!(
            dfs.read_range(name, 0, data.len()).unwrap(),
            *data,
            "{family} {name}: final range read"
        );
    }
}

#[test]
fn chaos_soak_reed_solomon() {
    soak("rs", ReedSolomon::new(4, 2, 256).unwrap(), 14, 2);
}

#[test]
fn chaos_soak_pyramid() {
    soak("pyramid", Pyramid::new(4, 2, 1, 256).unwrap(), 14, 2);
}

#[test]
fn chaos_soak_carousel() {
    soak("carousel", Carousel::new(4, 2, 128).unwrap(), 14, 2);
}

#[test]
fn chaos_soak_galloper() {
    soak("galloper", Galloper::uniform(4, 2, 1, 128).unwrap(), 14, 2);
}
